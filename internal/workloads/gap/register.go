package gap

import (
	"fmt"
	"sync"

	"repro/internal/registry"
	"repro/internal/trace"
)

// Graph construction dominates workload setup and graphs are immutable
// once built, so instances are shared between kernel sources and across
// concurrent sweep cells.
var (
	sharedMu     sync.Mutex
	sharedGraphs = map[string]*Graph{}
)

// SharedGraph returns a cached graph for (kind, scale, degree, seed),
// building it on first use. It is safe for concurrent use.
func SharedGraph(kind GraphKind, scale, degree int, seed uint64) *Graph {
	key := fmt.Sprintf("%v-%d-%d-%d", kind, scale, degree, seed)
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if g, ok := sharedGraphs[key]; ok {
		return g
	}
	g := kind.Build(scale, degree, seed)
	sharedGraphs[key] = g
	return g
}

// init self-registers the six GAP workloads of Table 2: three kernels over
// the Kronecker and uniform-random graph families.
func init() {
	kernels := []struct {
		prefix string
		kernel Kind
		doc    string
	}{
		{"bfs", BFS, "breadth-first search, fresh random source per trial"},
		{"cc", CC, "connected components by label propagation"},
		{"pr", PR, "PageRank power iterations"},
	}
	graphs := []struct {
		suffix string
		kind   GraphKind
	}{
		{"kron", Kron},
		{"urand", URand},
	}
	for _, k := range kernels {
		for _, g := range graphs {
			k, g := k, g
			name := k.prefix + "-" + g.suffix
			registry.Workloads.MustRegister(registry.WorkloadEntry{
				Name: name,
				Doc:  fmt.Sprintf("GAP %s over a %v graph", k.doc, g.kind),
				New: func(p registry.WorkloadParams) (trace.Source, error) {
					scale, degree := p.GraphScale, p.GraphDegree
					if scale <= 0 {
						scale = 14
					}
					if degree <= 0 {
						degree = 8
					}
					graph := SharedGraph(g.kind, scale, degree, p.Seed)
					return NewSourceFromGraph(k.kernel, graph, "gap-"+name, p.Seed), nil
				},
			})
		}
	}
}
