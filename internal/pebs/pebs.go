// Package pebs simulates hardware event-based memory-access sampling
// (Intel PEBS / AMD IBS). Real PEBS delivers, at a configured period, a
// buffer of records each holding the virtual address of a sampled load or
// store; tiering runtimes drain that buffer in batches (Algorithm 1 in the
// paper). This package reproduces the interface contract exactly — a
// subsampled address stream with a bounded buffer that drops records under
// overload — so policies written against it behave as they would against
// the hardware facility.
package pebs

import (
	"fmt"

	"repro/internal/mem"
)

// Sample is one sampled memory access.
type Sample struct {
	// Page is the accessed virtual page.
	Page mem.PageID
	// Tier is where the access was served from, mirroring PEBS data-source
	// encoding (local DRAM vs CXL), which Memtis-style systems use.
	Tier mem.Tier
	// Time is the virtual time of the access in nanoseconds.
	Time int64
	// Write reports stores (sampled via a separate counter on real HW).
	Write bool
}

// Config controls the sampler.
type Config struct {
	// Period is the sampling period: one sample is taken every Period
	// accesses. Real deployments use periods in the hundreds to thousands
	// to bound overhead; the default mirrors that scaled to simulated
	// footprints.
	Period int
	// BufferSize is the capacity of the sample ring buffer. When the
	// consumer falls behind, new samples are dropped (as the hardware
	// does), and the drop is counted.
	BufferSize int
}

// DefaultConfig returns a sampling setup proportionate to the simulator's
// scaled-down footprints.
func DefaultConfig() Config {
	return Config{Period: 13, BufferSize: 1 << 16}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("pebs: Period must be positive, got %d", c.Period)
	}
	if c.BufferSize <= 0 {
		return fmt.Errorf("pebs: BufferSize must be positive, got %d", c.BufferSize)
	}
	return nil
}

// Stats counts sampler activity.
type Stats struct {
	Accesses uint64 `json:"accesses"`
	Sampled  uint64 `json:"sampled"`
	Dropped  uint64 `json:"dropped"`
	Drained  uint64 `json:"drained"`
}

// Sampler subsamples an access stream into a bounded ring buffer.
// It is not safe for concurrent use.
type Sampler struct {
	cfg Config
	// countdown is the number of accesses left until the next sample —
	// skip-ahead sampling, so the per-access cost between samples is one
	// decrement and one branch (and Observe inlines into hot loops).
	countdown int
	// accBase accumulates the access count folded in at each sample (and
	// Reset); total accesses = accBase + (Period - countdown).
	accBase uint64
	ring    []Sample
	head    int // next write
	tail    int // next read
	size    int
	stats   Stats
}

// New creates a Sampler. It panics on invalid configuration, as samplers
// are constructed from validated configs.
func New(cfg Config) (*Sampler, error) {
	return NewWithRing(cfg, nil)
}

// NewWithRing is New with a caller-supplied ring buffer to reuse (the
// default BufferSize is a 2 MB allocation, worth recycling across sweep
// cells). A short ring is ignored. The recycled ring is scrubbed on
// checkout: its contents are another run's samples, and although the
// head/tail/size protocol never reads an unwritten slot, clearing makes
// that a guarantee rather than an invariant — a buffer-handling bug can
// surface only zero samples, never a previous cell's pages leaking into
// this cell's policy decisions or drop counts.
func NewWithRing(cfg Config, ring []Sample) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cap(ring) >= cfg.BufferSize {
		ring = ring[:cfg.BufferSize]
		clear(ring)
	} else {
		ring = make([]Sample, cfg.BufferSize)
	}
	return &Sampler{cfg: cfg, countdown: cfg.Period, ring: ring}, nil
}

// Ring exposes the sampler's backing buffer for reuse pools; the sampler
// must not be used afterwards.
func (s *Sampler) Ring() []Sample { return s.ring }

// MustNew is New that panics on error.
func MustNew(cfg Config) *Sampler {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the sampler configuration.
func (s *Sampler) Config() Config { return s.cfg }

// Observe feeds one access into the sampler. Every Period-th access is
// recorded; records are dropped when the ring is full. Between samples it
// is a pure countdown decrement, so it inlines into the simulator's loop.
func (s *Sampler) Observe(page mem.PageID, tier mem.Tier, now int64, write bool) {
	s.countdown--
	if s.countdown > 0 {
		return
	}
	s.sample(page, tier, now, write)
}

// sample records one sampled access and rearms the countdown. Kept out of
// Observe so the per-access path stays under the inlining budget.
//
//go:noinline
func (s *Sampler) sample(page mem.PageID, tier mem.Tier, now int64, write bool) {
	s.countdown = s.cfg.Period
	s.Take(page, tier, now, write)
}

// Take records one sampled access, accounting a full period of accesses
// (the sample plus the Period-1 skipped before it). It is the firing half
// of Observe for callers that hoist the skip countdown into their own loop
// — the simulator keeps it in a register and calls Take when it hits zero,
// then ObserveSkipped once at the end for the unfired remainder.
func (s *Sampler) Take(page mem.PageID, tier mem.Tier, now int64, write bool) {
	s.accBase += uint64(s.cfg.Period)
	s.stats.Sampled++
	if s.size == len(s.ring) {
		s.stats.Dropped++
		return
	}
	s.ring[s.head] = Sample{Page: page, Tier: tier, Time: now, Write: write}
	if s.head++; s.head == len(s.ring) {
		s.head = 0
	}
	s.size++
}

// ObserveSkipped accounts n accesses that a countdown-hoisting caller
// observed without reaching the sampling period, keeping Stats().Accesses
// exact.
func (s *Sampler) ObserveSkipped(n int) {
	if n > 0 {
		s.accBase += uint64(n)
	}
}

// Pending returns the number of buffered samples.
func (s *Sampler) Pending() int { return s.size }

// Drain moves up to max buffered samples into dst (appending) and returns
// the extended slice. max <= 0 drains everything.
func (s *Sampler) Drain(dst []Sample, max int) []Sample {
	n := s.size
	if max > 0 && max < n {
		n = max
	}
	// At most two bulk copies: tail→end of ring, then a wrapped remainder.
	first := n
	if avail := len(s.ring) - s.tail; first > avail {
		first = avail
	}
	dst = append(dst, s.ring[s.tail:s.tail+first]...)
	if rest := n - first; rest > 0 {
		dst = append(dst, s.ring[:rest]...)
		s.tail = rest
	} else if s.tail += first; s.tail == len(s.ring) {
		s.tail = 0
	}
	s.size -= n
	s.stats.Drained += uint64(n)
	return dst
}

// Stats returns a copy of the sampler statistics. The access count is
// derived from the countdown state, so it stays exact without per-access
// bookkeeping.
func (s *Sampler) Stats() Stats {
	st := s.stats
	st.Accesses = s.accBase + uint64(s.cfg.Period-s.countdown)
	return st
}

// Reset clears buffered samples and the period phase but keeps statistics.
func (s *Sampler) Reset() {
	s.accBase += uint64(s.cfg.Period - s.countdown)
	s.head, s.tail, s.size = 0, 0, 0
	s.countdown = s.cfg.Period
}
