// Package pebs simulates hardware event-based memory-access sampling
// (Intel PEBS / AMD IBS). Real PEBS delivers, at a configured period, a
// buffer of records each holding the virtual address of a sampled load or
// store; tiering runtimes drain that buffer in batches (Algorithm 1 in the
// paper). This package reproduces the interface contract exactly — a
// subsampled address stream with a bounded buffer that drops records under
// overload — so policies written against it behave as they would against
// the hardware facility.
package pebs

import (
	"fmt"

	"repro/internal/mem"
)

// Sample is one sampled memory access.
type Sample struct {
	// Page is the accessed virtual page.
	Page mem.PageID
	// Tier is where the access was served from, mirroring PEBS data-source
	// encoding (local DRAM vs CXL), which Memtis-style systems use.
	Tier mem.Tier
	// Time is the virtual time of the access in nanoseconds.
	Time int64
	// Write reports stores (sampled via a separate counter on real HW).
	Write bool
}

// Config controls the sampler.
type Config struct {
	// Period is the sampling period: one sample is taken every Period
	// accesses. Real deployments use periods in the hundreds to thousands
	// to bound overhead; the default mirrors that scaled to simulated
	// footprints.
	Period int
	// BufferSize is the capacity of the sample ring buffer. When the
	// consumer falls behind, new samples are dropped (as the hardware
	// does), and the drop is counted.
	BufferSize int
}

// DefaultConfig returns a sampling setup proportionate to the simulator's
// scaled-down footprints.
func DefaultConfig() Config {
	return Config{Period: 13, BufferSize: 1 << 16}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("pebs: Period must be positive, got %d", c.Period)
	}
	if c.BufferSize <= 0 {
		return fmt.Errorf("pebs: BufferSize must be positive, got %d", c.BufferSize)
	}
	return nil
}

// Stats counts sampler activity.
type Stats struct {
	Accesses uint64 `json:"accesses"`
	Sampled  uint64 `json:"sampled"`
	Dropped  uint64 `json:"dropped"`
	Drained  uint64 `json:"drained"`
}

// Sampler subsamples an access stream into a bounded ring buffer.
// It is not safe for concurrent use.
type Sampler struct {
	cfg   Config
	count int
	ring  []Sample
	head  int // next write
	tail  int // next read
	size  int
	stats Stats
}

// New creates a Sampler. It panics on invalid configuration, as samplers
// are constructed from validated configs.
func New(cfg Config) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sampler{cfg: cfg, ring: make([]Sample, cfg.BufferSize)}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Sampler {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the sampler configuration.
func (s *Sampler) Config() Config { return s.cfg }

// Observe feeds one access into the sampler. Every Period-th access is
// recorded; records are dropped when the ring is full.
func (s *Sampler) Observe(page mem.PageID, tier mem.Tier, now int64, write bool) {
	s.stats.Accesses++
	s.count++
	if s.count < s.cfg.Period {
		return
	}
	s.count = 0
	s.stats.Sampled++
	if s.size == len(s.ring) {
		s.stats.Dropped++
		return
	}
	s.ring[s.head] = Sample{Page: page, Tier: tier, Time: now, Write: write}
	s.head = (s.head + 1) % len(s.ring)
	s.size++
}

// Pending returns the number of buffered samples.
func (s *Sampler) Pending() int { return s.size }

// Drain moves up to max buffered samples into dst (appending) and returns
// the extended slice. max <= 0 drains everything.
func (s *Sampler) Drain(dst []Sample, max int) []Sample {
	n := s.size
	if max > 0 && max < n {
		n = max
	}
	for i := 0; i < n; i++ {
		dst = append(dst, s.ring[s.tail])
		s.tail = (s.tail + 1) % len(s.ring)
	}
	s.size -= n
	s.stats.Drained += uint64(n)
	return dst
}

// Stats returns a copy of the sampler statistics.
func (s *Sampler) Stats() Stats { return s.stats }

// Reset clears buffered samples and the period phase but keeps statistics.
func (s *Sampler) Reset() {
	s.head, s.tail, s.size, s.count = 0, 0, 0, 0
}
