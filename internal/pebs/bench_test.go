package pebs

import (
	"testing"

	"repro/internal/mem"
)

// BenchmarkPebsObserve measures the between-samples cost of Observe — a
// countdown decrement — plus the periodic sample capture, with a consumer
// draining so the ring never overflows.
func BenchmarkPebsObserve(b *testing.B) {
	s := MustNew(Config{Period: 13, BufferSize: 1 << 12})
	var batch []Sample
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(mem.PageID(i&0xffff), mem.Slow, int64(i), i&7 == 0)
		if s.Pending() >= 256 {
			batch = s.Drain(batch[:0], 0)
		}
	}
	_ = batch
}

// BenchmarkPebsDrain measures bulk sample drains.
func BenchmarkPebsDrain(b *testing.B) {
	s := MustNew(Config{Period: 1, BufferSize: 1 << 12})
	batch := make([]Sample, 0, 1<<12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(mem.PageID(i), mem.Fast, int64(i), false)
		if s.Pending() == 1<<12 {
			batch = s.Drain(batch[:0], 0)
		}
	}
	_ = batch
}
