package pebs

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{{Period: 0, BufferSize: 10}, {Period: 10, BufferSize: 0}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New(%+v) should fail", c)
		}
	}
}

func TestSamplingPeriod(t *testing.T) {
	s := MustNew(Config{Period: 10, BufferSize: 1000})
	for i := 0; i < 100; i++ {
		s.Observe(mem.PageID(i), mem.Fast, int64(i), false)
	}
	if s.Pending() != 10 {
		t.Errorf("100 accesses at period 10 → %d samples, want 10", s.Pending())
	}
	st := s.Stats()
	if st.Accesses != 100 || st.Sampled != 10 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSampleContents(t *testing.T) {
	s := MustNew(Config{Period: 2, BufferSize: 8})
	s.Observe(1, mem.Fast, 100, false)
	s.Observe(2, mem.Slow, 200, true) // 2nd access → sampled
	got := s.Drain(nil, 0)
	if len(got) != 1 {
		t.Fatalf("drained %d, want 1", len(got))
	}
	want := Sample{Page: 2, Tier: mem.Slow, Time: 200, Write: true}
	if got[0] != want {
		t.Errorf("sample = %+v, want %+v", got[0], want)
	}
}

func TestDropOnOverflow(t *testing.T) {
	s := MustNew(Config{Period: 1, BufferSize: 4})
	for i := 0; i < 10; i++ {
		s.Observe(mem.PageID(i), mem.Fast, 0, false)
	}
	if s.Pending() != 4 {
		t.Errorf("Pending = %d, want 4 (buffer capacity)", s.Pending())
	}
	if s.Stats().Dropped != 6 {
		t.Errorf("Dropped = %d, want 6", s.Stats().Dropped)
	}
	// The oldest samples are kept (drops happen at the producer).
	got := s.Drain(nil, 0)
	if got[0].Page != 0 || got[3].Page != 3 {
		t.Errorf("kept pages %v, want the first four", got)
	}
}

func TestDrainMax(t *testing.T) {
	s := MustNew(Config{Period: 1, BufferSize: 100})
	for i := 0; i < 50; i++ {
		s.Observe(mem.PageID(i), mem.Fast, 0, false)
	}
	got := s.Drain(nil, 20)
	if len(got) != 20 || s.Pending() != 30 {
		t.Errorf("Drain(20): got %d pending %d", len(got), s.Pending())
	}
	got = s.Drain(got[:0], 0)
	if len(got) != 30 || s.Pending() != 0 {
		t.Errorf("Drain(all): got %d pending %d", len(got), s.Pending())
	}
	if s.Stats().Drained != 50 {
		t.Errorf("Drained = %d, want 50", s.Stats().Drained)
	}
}

func TestRingWraparound(t *testing.T) {
	s := MustNew(Config{Period: 1, BufferSize: 4})
	// Fill, drain, fill again to force head/tail wrap.
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			s.Observe(mem.PageID(round*10+i), mem.Fast, 0, false)
		}
		got := s.Drain(nil, 0)
		if len(got) != 3 {
			t.Fatalf("round %d: drained %d, want 3", round, len(got))
		}
		for i, smp := range got {
			if smp.Page != mem.PageID(round*10+i) {
				t.Fatalf("round %d: sample %d = %+v (FIFO violated)", round, i, smp)
			}
		}
	}
}

func TestReset(t *testing.T) {
	s := MustNew(Config{Period: 3, BufferSize: 10})
	s.Observe(1, mem.Fast, 0, false)
	s.Observe(1, mem.Fast, 0, false) // phase = 2
	s.Reset()
	// After reset the phase restarts: two more observes must not sample.
	s.Observe(1, mem.Fast, 0, false)
	s.Observe(1, mem.Fast, 0, false)
	if s.Pending() != 0 {
		t.Error("Reset must clear the period phase")
	}
	s.Observe(1, mem.Fast, 0, false)
	if s.Pending() != 1 {
		t.Error("third post-reset observe must sample")
	}
}

// Property: for any access count n and period p, samples = floor(n/p) when
// the buffer is large enough, and FIFO order is preserved.
func TestSampleCountProperty(t *testing.T) {
	f := func(n uint16, p uint8) bool {
		period := int(p)%50 + 1
		s := MustNew(Config{Period: period, BufferSize: 1 << 16})
		for i := 0; i < int(n); i++ {
			s.Observe(mem.PageID(i), mem.Fast, int64(i), false)
		}
		want := int(n) / period
		got := s.Drain(nil, 0)
		if len(got) != want {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Time <= got[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	s := MustNew(DefaultConfig())
	scratch := make([]Sample, 0, 1024)
	for i := 0; i < b.N; i++ {
		s.Observe(mem.PageID(i&0xffff), mem.Fast, int64(i), false)
		if s.Pending() > 512 {
			scratch = s.Drain(scratch[:0], 0)
		}
	}
}

// TestCountdownOverflowDrop is the regression test for the countdown
// sampler rewrite: with the ring full, every further sample must be
// dropped and counted, the countdown must keep rearming (sampling cadence
// unchanged), and the derived access count must stay exact through
// overflow, drain, and Reset.
func TestCountdownOverflowDrop(t *testing.T) {
	s := MustNew(Config{Period: 3, BufferSize: 4})
	total := 3 * 10 // 10 samples: 4 buffered + 6 dropped
	for i := 0; i < total; i++ {
		s.Observe(mem.PageID(i), mem.Slow, int64(i), false)
	}
	st := s.Stats()
	if st.Accesses != uint64(total) {
		t.Errorf("Accesses = %d, want %d", st.Accesses, total)
	}
	if st.Sampled != 10 {
		t.Errorf("Sampled = %d, want 10", st.Sampled)
	}
	if st.Dropped != 6 {
		t.Errorf("Dropped = %d, want 6", st.Dropped)
	}
	if s.Pending() != 4 {
		t.Errorf("Pending = %d, want 4", s.Pending())
	}
	// The buffered samples are the first four; drops never overwrite.
	got := s.Drain(nil, 0)
	for i, smp := range got {
		if want := mem.PageID(3*i + 2); smp.Page != want {
			t.Errorf("sample %d: page %d, want %d", i, smp.Page, want)
		}
	}
	// A drained ring resumes capturing on the existing countdown phase:
	// two more accesses complete the period after the one observed above.
	s.Observe(1000, mem.Fast, 1, false)
	if s.Pending() != 0 {
		t.Fatalf("sample fired mid-period")
	}
	s.Observe(1001, mem.Fast, 2, false)
	s.Observe(1002, mem.Fast, 3, false)
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d after a full period, want 1", s.Pending())
	}
	if st := s.Stats(); st.Accesses != uint64(total+3) {
		t.Errorf("Accesses after drain = %d, want %d", st.Accesses, total+3)
	}
	// Reset clears the phase but keeps statistics exact.
	s.Observe(2000, mem.Fast, 4, false)
	s.Reset()
	if st := s.Stats(); st.Accesses != uint64(total+4) {
		t.Errorf("Accesses after Reset = %d, want %d", st.Accesses, total+4)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending after Reset = %d, want 0", s.Pending())
	}
}
