package trace

import (
	"reflect"
	"testing"

	"repro/internal/mem"
)

// collectOps pulls n ops through NextOp.
func collectOps(src Source, n int) [][]Access {
	out := make([][]Access, 0, n)
	for i := 0; i < n; i++ {
		op := src.NextOp(nil)
		cp := make([]Access, len(op))
		copy(cp, op)
		out = append(out, cp)
	}
	return out
}

// splitBatch cuts a batch into ops at EndOp marks, clearing the mark so
// the ops compare equal to NextOp output.
func splitBatch(t *testing.T, batch []Access) [][]Access {
	t.Helper()
	var out [][]Access
	start := 0
	for i, a := range batch {
		if a.EndOp {
			op := make([]Access, i+1-start)
			copy(op, batch[start:i+1])
			op[len(op)-1].EndOp = false
			out = append(out, op)
			start = i + 1
		}
	}
	if start != len(batch) {
		t.Fatalf("batch does not end on an op boundary (%d trailing accesses)", len(batch)-start)
	}
	return out
}

// TestNextBatchMatchesNextOp locks the core BatchSource contract: for any
// interleaving of batch sizes, the concatenated ops equal per-op fetches.
func TestNextBatchMatchesNextOp(t *testing.T) {
	mk := func() []Source {
		return []Source{
			NewZipfSource("z", 1024, 1.0, 0.2, 3),
			NewScanSource("s", 100),
			NewMixSource("m", NewZipfSource("a", 512, 1.0, 0, 1), NewScanSource("b", 512), 0.7, 9),
			NewShiftingZipfSource("sh", 1024, 1.0, 0.1, 3, 70, 0.5),
		}
	}
	ref, batched := mk(), mk()
	for i := range ref {
		want := collectOps(ref[i], 200)
		bs := AsBatchSource(batched[i])
		var got [][]Access
		// Batches may come back short (shift alignment), so keep asking,
		// cycling through sizes, until enough ops arrived.
		sizes := []int{1, 7, 64, 128}
		for k := 0; len(got) < 200; k++ {
			got = append(got, splitBatch(t, bs.NextBatch(nil, sizes[k%len(sizes)]))...)
		}
		got = got[:200]
		if !reflect.DeepEqual(want, got) {
			t.Errorf("source %s: batched ops diverge from per-op fetches", ref[i].Name())
		}
	}
}

// TestShiftingBatchEndsBeforeShift asserts the shift-alignment contract: a
// batch never spans the shifting op, which must open its own batch.
func TestShiftingBatchEndsBeforeShift(t *testing.T) {
	s := NewShiftingZipfSource("sh", 1024, 1.0, 0, 3, 100, 0.5)
	got := s.NextBatch(nil, 256)
	if len(got) != 99 {
		t.Fatalf("first batch = %d ops, want 99 (capped before the shift op)", len(got))
	}
	if s.ShiftTime() != -1 {
		t.Fatal("shift fired before its op")
	}
	got = s.NextBatch(got[:0], 256)
	if len(got) != 256 {
		t.Fatalf("post-shift batch = %d ops, want uncapped 256", len(got))
	}
}

// TestAdapterSingleOpForShiftSources asserts the generic adapter degrades
// unknown shift-capable sources to one op per call.
func TestAdapterSingleOpForShiftSources(t *testing.T) {
	type hidden struct{ ShiftSource }
	src := hidden{NewShiftingZipfSource("sh", 256, 1.0, 0, 3, 50, 0.5)}
	bs := AsBatchSource(src)
	if got := bs.NextBatch(nil, 64); len(got) != 1 {
		t.Fatalf("adapter batch for a ShiftSource = %d ops, want 1", len(got))
	}
	plain := struct{ Source }{NewScanSource("s", 16)}
	if got := AsBatchSource(plain).NextBatch(nil, 64); len(got) != 64 {
		t.Fatalf("adapter batch for a plain source = %d ops, want 64", len(got))
	}
}

// TestReplaySourceRoundTrip asserts a replayed stream equals the original
// generator's, through NextOp, NextBatch, and packed views, including
// wrap-around.
func TestReplaySourceRoundTrip(t *testing.T) {
	const ops = 300
	gen := func() Source { return NewZipfSource("z", 2048, 1.0, 0.3, 11) }
	rs := NewReplaySource(gen(), ops, 1<<20, nil)
	if rs == nil {
		t.Fatal("NewReplaySource returned nil")
	}
	if rs.Ops() != ops {
		t.Fatalf("Ops = %d, want %d", rs.Ops(), ops)
	}
	want := collectOps(gen(), ops)

	got := collectOps(rs.Fork(), ops)
	for i := range got { // NextOp marks EndOp on the final access; strip it
		got[i][len(got[i])-1].EndOp = false
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("replayed NextOp stream diverges from the generator")
	}

	// Packed views, spanning a wrap-around.
	fork := rs.Fork()
	var views []Access
	for len(views) < 2*ops { // two full passes
		pv := fork.NextPackedView(64)
		if len(pv) == 0 {
			t.Fatal("empty packed view")
		}
		for _, v := range pv {
			views = append(views, UnpackAccess(v))
		}
	}
	split := splitBatch(t, views)
	for i, op := range split[:ops] {
		if !reflect.DeepEqual(want[i], op) {
			t.Fatalf("packed view op %d diverges", i)
		}
	}
	for i, op := range split[ops : 2*ops-1] { // wrapped pass repeats the stream
		if !reflect.DeepEqual(want[i], op) {
			t.Fatalf("wrapped op %d diverges", i)
		}
	}
}

// TestReplaySourceBounds asserts the fallback conditions return nil.
func TestReplaySourceBounds(t *testing.T) {
	if rs := NewReplaySource(NewScanSource("s", 64), 1000, 10, nil); rs != nil {
		t.Error("stream over maxAccesses must return nil")
	}
	big := struct{ Source }{NewScanSource("s", 64)}
	_ = big
	huge := &fixedPage{page: mem.PageID(packedPageLimit)}
	if rs := NewReplaySource(huge, 10, 1000, nil); rs != nil {
		t.Error("page beyond the packed encoding must return nil")
	}
}

// fixedPage emits one constant-page op forever.
type fixedPage struct{ page mem.PageID }

func (f *fixedPage) Name() string      { return "fixed" }
func (f *fixedPage) NumPages() int     { return int(f.page) + 1 }
func (f *fixedPage) AdvanceTime(int64) {}
func (f *fixedPage) NextOp(dst []Access) []Access {
	return append(dst, Access{Page: f.page})
}

// TestClockFreeMarkers locks which built-in synthetics are clock-free.
func TestClockFreeMarkers(t *testing.T) {
	cases := []struct {
		src  interface{ ClockFree() bool }
		want bool
	}{
		{NewZipfSource("z", 64, 1.0, 0, 1), true},
		{NewScanSource("s", 64), true},
		{NewShiftingZipfSource("sh", 64, 1.0, 0, 1, 10, 0.5), false},
		{NewMixSource("m", NewZipfSource("a", 64, 1.0, 0, 1), NewScanSource("b", 64), 0.5, 2), true},
		{NewMixSource("m", NewShiftingZipfSource("sh", 64, 1.0, 0, 1, 10, 0.5), NewScanSource("b", 64), 0.5, 2), false},
	}
	for i, c := range cases {
		if got := c.src.ClockFree(); got != c.want {
			t.Errorf("case %d: ClockFree = %v, want %v", i, got, c.want)
		}
	}
}
