// Package trace defines the access-stream contract between workload
// generators and the simulator, plus composable synthetic sources used by
// the motivation experiments (Figures 2 and 3) and tests.
//
// A workload is a Source that produces Access records one operation at a
// time. Operations group related page touches (one cache GET, one vertex
// expansion, one tree probe); the simulator charges each operation's latency
// as the sum of its page-access latencies, which is what the paper's
// "median latency" per cache op measures.
package trace

import "repro/internal/mem"

// Access is one page touch inside an operation.
type Access struct {
	Page  mem.PageID
	Write bool
	// EndOp marks the final access of its operation inside a batch, so a
	// flat access slice carries operation boundaries. Batch producers
	// (BatchSource implementations) set it; single-op NextOp leaves it
	// false because the returned slice spans exactly one operation.
	EndOp bool
}

// Source produces operations. Implementations are single-threaded.
type Source interface {
	// Name identifies the workload in reports.
	Name() string
	// NumPages is the dense page-space size the source addresses.
	NumPages() int
	// NextOp fills dst with the next operation's page accesses, returning
	// the extended slice. Implementations recycle dst's backing array.
	// Sources are infinite: they never report exhaustion.
	NextOp(dst []Access) []Access
	// AdvanceTime notifies the source of the simulator's virtual clock so
	// time-driven behaviour (distribution shifts, round boundaries, TTL
	// churn) can trigger. now is in virtual nanoseconds.
	AdvanceTime(now int64)
}

// ShiftSource is implemented by workloads whose hotness distribution changes
// at a known virtual time; adaptation experiments (Fig. 4, Table 3) need to
// know when the change happened.
type ShiftSource interface {
	Source
	// ShiftTime returns the virtual time of the distribution change.
	ShiftTime() int64
}
