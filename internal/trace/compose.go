package trace

// Workload composition: deterministic combinators that build composite
// access streams out of existing Sources. Mix interleaves N tenants with a
// weighted round-robin schedule over disjoint page ranges, Phases (and its
// two-source shorthand Concat) switches sources after fixed op counts,
// Repeat loops a captured prefix forever, and Offset/Scale transform the
// address space. Combinators nest freely, so five base workloads span an
// unbounded scenario space — internal/registry exposes the same algebra as
// a textual grammar ("mix:0.7*cdn,0.3*silo", see docs/COMPOSITION.md).
//
// Every combinator obeys the full Source ecosystem contract:
//
//   - NextOp and native NextBatch produce the identical operation stream
//     for any interleaving of fetch sizes (the BatchSource contract), so
//     composed sweeps stay byte-identical between the single-op reference
//     schedule and the batched hot path.
//   - ShiftSource propagates: when any child can shift, the composite
//     reports the latest child shift time, and batches degrade to one op
//     per call so op-count-triggered shifts observe the virtual clock on
//     exactly the single-op schedule (the AsBatchSource contract).
//   - ClockFree propagates: a composite is clock-free only when every
//     child declares itself clock-free, so the sweep engine's stream
//     sharing still kicks in for composed workloads.
//   - Err and Close propagate, so a composition over trace replays
//     surfaces stream failures and releases file handles like a bare
//     replay does.
//
// AdvanceTime is forwarded to every child, active or not: an idle tenant
// keeps observing the virtual clock, so a shift that fires the moment its
// phase begins timestamps itself correctly.

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/mem"
)

// composite is the contract every combinator implementation satisfies.
// The exported constructors return it promoted to a plain Source, wrapped
// in shiftComposite when a child can shift, so the ShiftSource interface
// is present exactly when shifts can actually happen — interface presence
// is what AsBatchSource, the trace recorder, and the simulator key on.
type composite interface {
	BatchSource
	ClockFree() bool
	Err() error
	Close() error
	childShiftTime() int64
}

// shiftComposite adds the ShiftSource interface to a composite whose
// children include at least one ShiftSource.
type shiftComposite struct{ composite }

// ShiftTime implements ShiftSource with the latest child shift time.
func (s shiftComposite) ShiftTime() int64 { return s.composite.childShiftTime() }

// promote returns c as the narrowest honest interface: ShiftSource-capable
// composites grow a ShiftTime method, the rest stay plain Sources.
func promote(c composite, shifty bool) Source {
	if shifty {
		return shiftComposite{c}
	}
	return c
}

// multiBase carries the child bookkeeping every combinator shares.
type multiBase struct {
	name     string
	srcs     []Source
	numPages int
	// shifty records a ShiftSource child: batches then degrade to one op
	// per call, because a composite cannot know a child's shift schedule
	// and an op generated ahead of its ticks would timestamp a shift with
	// a stale clock (see AsBatchSource).
	shifty bool
	// clockFree records that every child declared itself clock-free at
	// construction; the composite's own scheduling is op-driven, so the
	// conjunction is the composite's report.
	clockFree bool
}

func newMultiBase(name string, srcs []Source, numPages int) multiBase {
	b := multiBase{name: name, srcs: srcs, numPages: numPages, clockFree: true}
	for _, s := range srcs {
		if _, ok := s.(ShiftSource); ok {
			b.shifty = true
		}
		if cf, ok := s.(ClockFree); !ok || !cf.ClockFree() {
			b.clockFree = false
		}
	}
	return b
}

// Name implements Source.
func (b *multiBase) Name() string { return b.name }

// NumPages implements Source.
func (b *multiBase) NumPages() int { return b.numPages }

// AdvanceTime implements Source, forwarding the clock to every child so
// idle tenants stay current (see the package comment on compose.go).
func (b *multiBase) AdvanceTime(now int64) {
	for _, s := range b.srcs {
		s.AdvanceTime(now)
	}
}

// ClockFree implements the marker from the construction-time conjunction.
func (b *multiBase) ClockFree() bool { return b.clockFree }

// Err returns the first latched child stream error, so a composition over
// trace replays cannot masquerade a truncated input as a clean run.
func (b *multiBase) Err() error {
	for _, s := range b.srcs {
		if es, ok := s.(interface{ Err() error }); ok {
			if err := es.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close implements io.Closer, closing every child that holds resources
// (trace replays) and returning the first failure.
func (b *multiBase) Close() error {
	var first error
	for _, s := range b.srcs {
		if c, ok := s.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// childShiftTime reports the latest child shift (-1 before any fires).
// Virtual time is monotonic and shifts stamp the current clock, so the
// maximum is always the most recent change.
func (b *multiBase) childShiftTime() int64 {
	t := int64(-1)
	for _, s := range b.srcs {
		if ss, ok := s.(ShiftSource); ok {
			if st := ss.ShiftTime(); st > t {
				t = st
			}
		}
	}
	return t
}

// Weighted pairs one tenant of a Mix with its share of operations.
type Weighted struct {
	// Source produces the tenant's stream.
	Source Source
	// Weight is the tenant's relative share of operations; any positive
	// value works, shares are weight/sum(weights).
	Weight float64
}

// mixSource interleaves N tenants by smooth weighted round-robin.
type mixSource struct {
	multiBase
	w    []float64
	cur  []float64
	wsum float64
	base []mem.PageID // per-tenant page offset into the combined space
}

// NewMix composes two or more tenants into one workload. Operations
// interleave by smooth weighted round-robin — a deterministic schedule
// (no RNG) that spreads each tenant's turns evenly at its weight's rate —
// and each tenant's pages are remapped into a private range of the
// combined page space (tenant i occupies [sum of earlier NumPages, +own)),
// so tenants never alias and the composite models true multi-tenancy.
// An empty name synthesizes "mix(w*child,...)" from the children.
func NewMix(name string, parts ...Weighted) (Source, error) {
	if len(parts) < 2 {
		return nil, fmt.Errorf("trace: a mix needs at least two tenants, got %d", len(parts))
	}
	srcs := make([]Source, len(parts))
	w := make([]float64, len(parts))
	base := make([]mem.PageID, len(parts))
	wsum := 0.0
	pages := 0
	for i, p := range parts {
		if p.Source == nil {
			return nil, fmt.Errorf("trace: mix tenant %d has no source", i)
		}
		if !(p.Weight > 0) || math.IsInf(p.Weight, 1) {
			return nil, fmt.Errorf("trace: mix tenant %d weight must be a positive finite number, got %v", i, p.Weight)
		}
		srcs[i] = p.Source
		w[i] = p.Weight
		wsum += p.Weight
		base[i] = mem.PageID(pages)
		n := p.Source.NumPages()
		if n <= 0 {
			return nil, fmt.Errorf("trace: mix tenant %d (%s) has a non-positive page space", i, p.Source.Name())
		}
		if pages > math.MaxInt-n {
			return nil, fmt.Errorf("trace: mix page spaces overflow when combined")
		}
		pages += n
	}
	if name == "" {
		labels := make([]string, len(srcs))
		for i := range srcs {
			labels[i] = strconv.FormatFloat(w[i], 'g', -1, 64) + "*" + srcs[i].Name()
		}
		name = "mix(" + strings.Join(labels, ",") + ")"
	}
	m := &mixSource{
		multiBase: newMultiBase(name, srcs, pages),
		w:         w,
		cur:       make([]float64, len(parts)),
		wsum:      wsum,
		base:      base,
	}
	return promote(m, m.shifty), nil
}

// pick advances the smooth weighted round-robin by one turn: every
// tenant's current score grows by its weight, the highest score (lowest
// index on ties) wins the turn and pays the weight sum back. The schedule
// is exactly proportional over any window of sum-of-integer-weight turns
// and needs no randomness, so mixes are deterministic by construction.
func (m *mixSource) pick() int {
	bi := 0
	best := math.Inf(-1)
	for i := range m.cur {
		m.cur[i] += m.w[i]
		if m.cur[i] > best {
			best, bi = m.cur[i], i
		}
	}
	m.cur[bi] -= m.wsum
	return bi
}

// NextOp implements Source: one turn of the schedule, with the winning
// tenant's pages remapped into its private range.
func (m *mixSource) NextOp(dst []Access) []Access {
	j := m.pick()
	n := len(dst)
	dst = m.srcs[j].NextOp(dst)
	if off := m.base[j]; off != 0 {
		for i := n; i < len(dst); i++ {
			dst[i].Page += off
		}
	}
	return dst
}

// NextBatch implements BatchSource by running the schedule op by op —
// the mix's turn order interleaves tenants too finely for child batches
// to pay off, and per-op fetching is bit-identical to the single-op
// schedule by construction. With a ShiftSource child the batch degrades
// to one op per call (see multiBase.shifty).
func (m *mixSource) NextBatch(dst []Access, max int) []Access {
	if m.shifty && max > 1 {
		max = 1
	}
	for k := 0; k < max; k++ {
		n := len(dst)
		dst = m.NextOp(dst)
		if len(dst) == n {
			break // a dead child stream ends the batch
		}
		dst[len(dst)-1].EndOp = true
	}
	return dst
}

// Stage is one phase of a NewPhases composition.
type Stage struct {
	// Source produces the stage's stream.
	Source Source
	// Ops is how many operations the stage runs before the next one
	// takes over. It must be positive for every stage but the last, and
	// zero for the last: the final stage runs until the simulation ends
	// (Sources are infinite).
	Ops int64
}

// phasesSource runs its stages back to back on an op-count schedule.
type phasesSource struct {
	multiBase
	bs    []BatchSource
	quota []int64
	idx   int
	rem   int64
}

// NewPhases composes two or more stages into one workload that switches
// sources at fixed operation counts — the canonical model of a phase-
// changing application (compute phase, then serving phase, ...). All
// stages share one address space: the composite's page space is the
// largest child's, and pages are not remapped, so a later phase revisits
// the same addresses a hotness tracker learned in an earlier one. An
// empty name synthesizes "phases(child@ops,...,child)".
func NewPhases(name string, stages ...Stage) (Source, error) {
	if len(stages) < 2 {
		return nil, fmt.Errorf("trace: phases need at least two stages, got %d", len(stages))
	}
	srcs := make([]Source, len(stages))
	bs := make([]BatchSource, len(stages))
	quota := make([]int64, len(stages))
	pages := 0
	for i, st := range stages {
		if st.Source == nil {
			return nil, fmt.Errorf("trace: phase stage %d has no source", i)
		}
		last := i == len(stages)-1
		if !last && st.Ops <= 0 {
			return nil, fmt.Errorf("trace: phase stage %d (%s) needs a positive op count", i, st.Source.Name())
		}
		if last && st.Ops != 0 {
			return nil, fmt.Errorf("trace: the final phase runs until the simulation ends; drop its op count (%d)", st.Ops)
		}
		srcs[i] = st.Source
		bs[i] = AsBatchSource(st.Source)
		quota[i] = st.Ops
		if n := st.Source.NumPages(); n > pages {
			pages = n
		}
	}
	if name == "" {
		parts := make([]string, len(stages))
		for i, st := range stages {
			parts[i] = st.Source.Name()
			if i < len(stages)-1 {
				parts[i] += "@" + strconv.FormatInt(st.Ops, 10)
			}
		}
		name = "phases(" + strings.Join(parts, ",") + ")"
	}
	p := &phasesSource{
		multiBase: newMultiBase(name, srcs, pages),
		bs:        bs,
		quota:     quota,
		rem:       quota[0],
	}
	return promote(p, p.shifty), nil
}

// NewConcat is the two-stage shorthand: a's first aOps operations, then b
// forever — "run source A for K ops, then B".
func NewConcat(name string, a Source, aOps int64, b Source) (Source, error) {
	return NewPhases(name, Stage{Source: a, Ops: aOps}, Stage{Source: b})
}

// advance moves to the next stage when the current one's quota is spent.
// A stage whose source died (empty ops) never spends its quota, so a
// failed trace replay pins the composition on the erroring stage and the
// latched Err surfaces — phases never silently skip a broken tenant.
func (p *phasesSource) advance() {
	for p.idx < len(p.srcs)-1 && p.rem <= 0 {
		p.idx++
		p.rem = p.quota[p.idx]
	}
}

// NextOp implements Source from the active stage.
func (p *phasesSource) NextOp(dst []Access) []Access {
	p.advance()
	n := len(dst)
	dst = p.srcs[p.idx].NextOp(dst)
	if len(dst) > n && p.idx < len(p.srcs)-1 {
		p.rem--
	}
	return dst
}

// countOps counts the operation boundaries in a batch extension.
func countOps(accs []Access) int {
	n := 0
	for i := range accs {
		if accs[i].EndOp {
			n++
		}
	}
	return n
}

// NextBatch implements BatchSource by delegating whole sub-batches to the
// active stage — phases run one source for long stretches, so child
// batching pays off here. A stage that returns fewer ops than asked ended
// its batch at a clock-sensitive boundary (a pending shift) or died; the
// composite then ends its own batch too, so the simulator drains and
// delivers every pending tick before the stage is asked again — exactly
// the re-request discipline the BatchSource contract prescribes.
func (p *phasesSource) NextBatch(dst []Access, max int) []Access {
	for max > 0 {
		p.advance()
		last := p.idx == len(p.srcs)-1
		ask := max
		if !last && int64(ask) > p.rem {
			ask = int(p.rem)
		}
		n := len(dst)
		dst = p.bs[p.idx].NextBatch(dst, ask)
		made := countOps(dst[n:])
		if !last {
			p.rem -= int64(made)
		}
		max -= made
		if made < ask {
			return dst
		}
	}
	return dst
}

// repeatSource captures its child's first ops operations, then loops them.
type repeatSource struct {
	multiBase
	loop   int64
	buf    []Access // captured accesses; EndOp marks op boundaries
	starts []int    // buf index of each captured op's start, plus end sentinel
	pos    int      // replay cursor (op index)
}

// NewRepeat captures src's first ops operations as they are first drawn
// and replays them in a loop forever after — a deterministic way to turn
// a long generator into a short periodic working set (and the composition
// analogue of a trace replay's wrap-around). The capture buffer holds the
// whole prefix in memory; size ops accordingly. An empty name synthesizes
// "repeat(child@ops)".
func NewRepeat(name string, src Source, ops int64) (Source, error) {
	if src == nil {
		return nil, fmt.Errorf("trace: repeat needs a source")
	}
	if ops <= 0 {
		return nil, fmt.Errorf("trace: repeat needs a positive op count, got %d", ops)
	}
	if name == "" {
		name = "repeat(" + src.Name() + "@" + strconv.FormatInt(ops, 10) + ")"
	}
	r := &repeatSource{
		multiBase: newMultiBase(name, []Source{src}, src.NumPages()),
		loop:      ops,
		starts:    []int{0},
	}
	return promote(r, r.shifty), nil
}

// captured reports how many ops the loop buffer holds so far.
func (r *repeatSource) captured() int64 { return int64(len(r.starts)) - 1 }

// captureOne draws one op from the child into both dst and the loop
// buffer; it reports whether the child produced anything.
func (r *repeatSource) captureOne(dst []Access) ([]Access, bool) {
	n := len(dst)
	dst = r.srcs[0].NextOp(dst)
	if len(dst) == n {
		return dst, false
	}
	r.buf = append(r.buf, dst[n:]...)
	r.buf[len(r.buf)-1].EndOp = true
	r.starts = append(r.starts, len(r.buf))
	return dst, true
}

// NextOp implements Source: capture until the loop is full, then replay.
func (r *repeatSource) NextOp(dst []Access) []Access {
	if r.captured() < r.loop {
		dst, _ = r.captureOne(dst)
		return dst
	}
	lo, hi := r.starts[r.pos], r.starts[r.pos+1]
	if r.pos++; int64(r.pos) >= r.loop {
		r.pos = 0
	}
	dst = append(dst, r.buf[lo:hi]...)
	// Single-op fetches leave EndOp false (the Access contract); the loop
	// buffer carries it set for the replay bulk path.
	dst[len(dst)-1].EndOp = false
	return dst
}

// NextBatch implements BatchSource. The capture phase draws per-op from
// the child — one op per call while the child can shift, like every
// combinator — and the replay phase bulk-copies from the loop buffer,
// which is clock-independent by construction and so always batch-safe.
func (r *repeatSource) NextBatch(dst []Access, max int) []Access {
	if r.shifty && max > 1 && r.captured() < r.loop {
		max = 1
	}
	for max > 0 {
		if r.captured() < r.loop {
			var ok bool
			dst, ok = r.captureOne(dst)
			if !ok {
				return dst
			}
			dst[len(dst)-1].EndOp = true
			max--
			continue
		}
		take := int64(max)
		if rem := r.loop - int64(r.pos); take > rem {
			take = rem
		}
		lo, hi := r.starts[r.pos], r.starts[int64(r.pos)+take]
		dst = append(dst, r.buf[lo:hi]...)
		r.pos += int(take)
		if int64(r.pos) == r.loop {
			r.pos = 0
		}
		max -= int(take)
	}
	return dst
}

// transformSource applies an affine page transform (page*mul + add) to a
// child's stream — Offset and Scale share it.
type transformSource struct {
	multiBase
	bs  BatchSource
	mul mem.PageID
	add mem.PageID
}

// NewOffset shifts every page of src up by pages, growing the page space
// by the same amount — the building block for placing tenants at chosen
// addresses when Mix's automatic remapping is not wanted. An empty name
// synthesizes "offset(child+pages)".
func NewOffset(name string, src Source, pages int64) (Source, error) {
	if src == nil {
		return nil, fmt.Errorf("trace: offset needs a source")
	}
	if pages < 0 {
		return nil, fmt.Errorf("trace: offset must be non-negative, got %d", pages)
	}
	if int64(src.NumPages()) > math.MaxInt-pages {
		return nil, fmt.Errorf("trace: offset %d overflows the page space", pages)
	}
	if name == "" {
		name = "offset(" + src.Name() + "+" + strconv.FormatInt(pages, 10) + ")"
	}
	t := &transformSource{
		multiBase: newMultiBase(name, []Source{src}, src.NumPages()+int(pages)),
		bs:        AsBatchSource(src),
		mul:       1,
		add:       mem.PageID(pages),
	}
	return promote(t, t.shifty), nil
}

// NewScale strides src's pages by factor (page p becomes p*factor),
// growing the page space factor-fold — the same access pattern spread
// over a larger, sparser footprint, which is how huge-page and metadata
// scaling studies stress capacity without changing locality structure.
// An empty name synthesizes "scale(factor*child)".
func NewScale(name string, src Source, factor int64) (Source, error) {
	if src == nil {
		return nil, fmt.Errorf("trace: scale needs a source")
	}
	if factor < 1 {
		return nil, fmt.Errorf("trace: scale factor must be at least 1, got %d", factor)
	}
	if n := int64(src.NumPages()); n > math.MaxInt/factor {
		return nil, fmt.Errorf("trace: scale factor %d overflows the page space", factor)
	}
	if name == "" {
		name = "scale(" + strconv.FormatInt(factor, 10) + "*" + src.Name() + ")"
	}
	t := &transformSource{
		multiBase: newMultiBase(name, []Source{src}, src.NumPages()*int(factor)),
		bs:        AsBatchSource(src),
		mul:       mem.PageID(factor),
		add:       0,
	}
	return promote(t, t.shifty), nil
}

// apply rewrites the pages of a freshly appended stream section.
func (t *transformSource) apply(accs []Access) {
	if t.mul == 1 && t.add == 0 {
		return
	}
	for i := range accs {
		accs[i].Page = accs[i].Page*t.mul + t.add
	}
}

// NextOp implements Source: the child's op with transformed pages.
func (t *transformSource) NextOp(dst []Access) []Access {
	n := len(dst)
	dst = t.srcs[0].NextOp(dst)
	t.apply(dst[n:])
	return dst
}

// NextBatch implements BatchSource by transforming one child batch per
// call. The transform is stateless, so the child's own batch discipline
// (native capping before shifts, the adapter's one-op degradation for
// unknown ShiftSources) passes through untouched, and an under-filled
// child batch under-fills this one — callers simply request again.
func (t *transformSource) NextBatch(dst []Access, max int) []Access {
	n := len(dst)
	dst = t.bs.NextBatch(dst, max)
	t.apply(dst[n:])
	return dst
}

// Interface conformance, including the conditional shift promotion.
var (
	_ BatchSource = (*mixSource)(nil)
	_ BatchSource = (*phasesSource)(nil)
	_ BatchSource = (*repeatSource)(nil)
	_ BatchSource = (*transformSource)(nil)
	_ BatchSource = shiftComposite{}
	_ ShiftSource = shiftComposite{}
	_ io.Closer   = (*multiBase)(nil)
)
