package trace

import (
	"testing"

	"repro/internal/mem"
)

func TestZipfSourceBasics(t *testing.T) {
	src := NewZipfSource("z", 1000, 0.99, 0.25, 1)
	if src.Name() != "z" || src.NumPages() != 1000 {
		t.Fatal("accessors mismatch")
	}
	var buf []Access
	writes := 0
	const ops = 20000
	counts := make(map[mem.PageID]int)
	for i := 0; i < ops; i++ {
		buf = src.NextOp(buf[:0])
		if len(buf) != 1 {
			t.Fatalf("zipf op has %d accesses, want 1", len(buf))
		}
		if int(buf[0].Page) >= 1000 {
			t.Fatalf("page %d out of range", buf[0].Page)
		}
		if buf[0].Write {
			writes++
		}
		counts[buf[0].Page]++
	}
	frac := float64(writes) / ops
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("write fraction = %v, want ≈ 0.25", frac)
	}
	// Skew: hottest page must absorb far more than the uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < ops/200 { // uniform share would be ops/1000
		t.Errorf("hottest page count = %d, expected strong skew", max)
	}
}

func TestZipfSourceDeterminism(t *testing.T) {
	a := NewZipfSource("a", 100, 1.0, 0, 42)
	b := NewZipfSource("b", 100, 1.0, 0, 42)
	for i := 0; i < 1000; i++ {
		pa := a.NextOp(nil)[0].Page
		pb := b.NextOp(nil)[0].Page
		if pa != pb {
			t.Fatal("same seed must reproduce the same stream")
		}
	}
}

func TestReshuffleChangesHotSet(t *testing.T) {
	src := NewZipfSource("z", 10000, 1.2, 0, 7)
	hotBefore := topPages(src, 300000, 100)
	src.Reshuffle(2.0 / 3.0)
	hotAfter := topPages(src, 300000, 100)
	overlap := 0
	for p := range hotAfter {
		if hotBefore[p] {
			overlap++
		}
	}
	// §2.3.2: 2/3 of previously hot data are no longer hot.
	if overlap > 60 {
		t.Errorf("hot-set overlap after 2/3 reshuffle = %d/100, want ≤ 60", overlap)
	}
	if overlap == 0 {
		t.Error("1/3 of the hot set should survive the shift")
	}
}

func topPages(src Source, ops, k int) map[mem.PageID]bool {
	counts := map[mem.PageID]int{}
	var buf []Access
	for i := 0; i < ops; i++ {
		buf = src.NextOp(buf[:0])
		counts[buf[0].Page]++
	}
	type pc struct {
		p mem.PageID
		c int
	}
	all := make([]pc, 0, len(counts))
	for p, c := range counts {
		all = append(all, pc{p, c})
	}
	// partial selection sort for top k
	top := map[mem.PageID]bool{}
	for i := 0; i < k && i < len(all); i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].c > all[best].c {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
		top[all[i].p] = true
	}
	return top
}

func TestShiftingZipfTriggersOnce(t *testing.T) {
	src := NewShiftingZipfSource("s", 1000, 1.0, 0, 3, 100, 0.5)
	if src.ShiftTime() != -1 {
		t.Error("ShiftTime must be -1 before the shift")
	}
	var buf []Access
	src.AdvanceTime(5000)
	for i := 0; i < 99; i++ {
		buf = src.NextOp(buf[:0])
	}
	if src.ShiftTime() != -1 {
		t.Error("shift fired too early")
	}
	buf = src.NextOp(buf[:0]) // 100th op triggers
	if src.ShiftTime() != 5000 {
		t.Errorf("ShiftTime = %d, want 5000 (last AdvanceTime)", src.ShiftTime())
	}
	// Further ops do not re-shift.
	src.AdvanceTime(9000)
	src.NextOp(buf[:0])
	if src.ShiftTime() != 5000 {
		t.Error("shift must fire exactly once")
	}
	var _ ShiftSource = src // interface check
}

func TestScanSourceSequential(t *testing.T) {
	src := NewScanSource("scan", 5)
	var buf []Access
	for want := 0; want < 12; want++ {
		buf = src.NextOp(buf[:0])
		if buf[0].Page != mem.PageID(want%5) {
			t.Fatalf("op %d touched page %d, want %d", want, buf[0].Page, want%5)
		}
	}
	src.AdvanceTime(1) // no-op, must not panic
	if src.Name() != "scan" || src.NumPages() != 5 {
		t.Error("accessors mismatch")
	}
}

func TestMixSource(t *testing.T) {
	a := NewScanSource("a", 10)
	b := NewScanSource("b", 100)
	m := NewMixSource("mix", a, b, 0.8, 5)
	if m.NumPages() != 100 {
		t.Errorf("mix NumPages = %d, want max(10,100)", m.NumPages())
	}
	fromA := 0
	var buf []Access
	for i := 0; i < 10000; i++ {
		buf = m.NextOp(buf[:0])
		if buf[0].Page < 10 {
			// ambiguous (both sources can produce <10); count via parity of
			// scan positions instead: just check ratio loosely using b's
			// distinct range.
		}
		if buf[0].Page >= 10 {
			continue
		}
		fromA++
	}
	// a produces only pages <10; b produces pages <10 one-tenth of the time.
	// Expected fraction of ops with page<10 ≈ 0.8 + 0.2*0.1 = 0.82.
	frac := float64(fromA) / 10000
	if frac < 0.75 || frac > 0.9 {
		t.Errorf("mix fraction = %v, want ≈ 0.82", frac)
	}
	m.AdvanceTime(10)
}
