package trace

import "repro/internal/mem"

// BatchSource is the bulk form of Source: one call produces up to max whole
// operations instead of one, amortizing the per-op interface dispatch the
// simulator's hot loop would otherwise pay. Operation boundaries inside the
// flat access slice are carried by Access.EndOp, set on the final access of
// every operation.
//
// The contract mirrors NextOp's, with two additions:
//
//   - A call may append fewer than max operations (sources with op-count-
//     triggered behaviour end a batch right before the triggering op so the
//     simulator's clock notifications stay on the single-op schedule, see
//     ShiftingZipfSource.NextBatch); callers simply request again. A call
//     that appends nothing means the source can no longer produce ops at
//     all — only failed trace replays do that — and callers account the
//     missing operations as empty, exactly like repeated empty NextOps.
//   - Batching must not change the produced stream: for any interleaving
//     of NextBatch sizes, the concatenated operations are identical to
//     per-op NextOp calls. Time-driven behaviour keyed on AdvanceTime is
//     the one hazard; see AsBatchSource.
type BatchSource interface {
	Source
	// NextBatch appends up to max whole operations to dst, marking each
	// operation's final access with EndOp, and returns the extended slice.
	NextBatch(dst []Access, max int) []Access
}

// ClockFree is implemented by sources that can promise their op stream is
// completely independent of the virtual clock: AdvanceTime notifications
// change nothing they emit, and they perform no shift timestamping a
// replay could miss. For such sources, one generated stream is valid for
// every simulation that consumes the same operation count — the sweep
// engine exploits this by generating once and replaying from memory across
// cells (see ReplaySource). The report is per-instance, because many
// sources are clock-free only in some configurations (e.g. a CacheLib
// instance with no scheduled bulk shift).
type ClockFree interface {
	// ClockFree reports whether this instance's stream is independent of
	// AdvanceTime and of shift timestamping.
	ClockFree() bool
}

// ReplaySource replays a pre-generated, immutable op stream from memory.
// Many ReplaySources can share one stream concurrently — each keeps only a
// cursor — which is how sweeps amortize generation across cells: the
// stream is generated once and every other cell consumes it by reference.
// Storage is packed at 4 bytes per access (page<<2 | endOp<<1 | write) and
// handed out zero-copy through NextPackedView, so replay costs a quarter
// of an []Access stream's memory traffic and no regeneration. Like every
// Source it is infinite: the stream wraps around at the end.
type ReplaySource struct {
	name     string
	numPages int
	packed   []uint32 // bit0 write, bit1 end-of-op, bits 2+ page id
	opStarts []int32  // packed index of each op's first access, plus end sentinel
	pos      int      // current op index
}

// packedPageLimit is the largest page id the packed encoding carries;
// larger page spaces fall back to live generation.
const packedPageLimit = 1 << 30

// NewReplaySource builds the shared immutable stream for a ReplaySource by
// drawing ops whole operations from src (which should be clock-free). The
// returned prototype is positioned at the start; Fork cheap-copies it for
// concurrent consumers. It returns nil if src stops producing early, a
// page id exceeds the packed encoding, or the stream would exceed
// maxAccesses — callers then fall back to live generation. recycle, when
// non-nil, donates a retired stream's backing arrays; no clearing is
// needed since reads never pass the written length.
func NewReplaySource(src Source, ops int64, maxAccesses int, recycle *ReplaySource) *ReplaySource {
	bs := AsBatchSource(src)
	var packed []uint32
	var opStarts []int32
	if recycle != nil {
		packed = recycle.packed[:0]
		opStarts = recycle.opStarts[:0]
	}
	if int64(cap(packed)) < min(int64(maxAccesses), ops) {
		packed = make([]uint32, 0, min(int64(maxAccesses), ops*4))
	}
	if int64(cap(opStarts)) < ops+1 {
		opStarts = make([]int32, 0, ops+1)
	}
	// opStarts[i] is op i's first access; the op ends where the next one
	// starts, so recording each op's end index after the leading 0 yields
	// starts and the final sentinel in one pass.
	opStarts = append(opStarts, 0)
	var chunk []Access // generation staging, stays cache-hot
	var generated int64
	sized := false
	for generated < ops {
		want := int64(4096)
		if rem := ops - generated; rem < want {
			want = rem
		}
		chunk = bs.NextBatch(chunk[:0], int(want))
		if len(chunk) == 0 || len(packed)+len(chunk) > maxAccesses ||
			len(packed)+len(chunk) > (1<<31-2) {
			return nil
		}
		// Bulk-extend, then index: the pack loop runs without per-element
		// append bookkeeping.
		base := len(packed)
		if cap(packed)-base < len(chunk) {
			grown := make([]uint32, base, (base+len(chunk))*2)
			copy(grown, packed)
			packed = grown
		}
		packed = packed[:base+len(chunk)]
		out := packed[base:]
		for j, a := range chunk {
			if a.Page >= packedPageLimit {
				return nil
			}
			v := uint32(a.Page) << 2
			if a.Write {
				v |= 1
			}
			if a.EndOp {
				v |= 2
				generated++
				opStarts = append(opStarts, int32(base+j+1))
			}
			out[j] = v
		}
		// Size the stream once from the first batch's measured access
		// density instead of paying repeated append-growth copies of a
		// multi-MB slice; at most the small first batch is re-copied.
		if !sized && generated > 0 {
			sized = true
			if generated < ops {
				projected := int(float64(len(packed)) / float64(generated) * float64(ops) * 1.07)
				if projected > maxAccesses {
					projected = maxAccesses
				}
				if cap(packed) < projected {
					grown := make([]uint32, len(packed), projected)
					copy(grown, packed)
					packed = grown
				}
			}
		}
	}
	return &ReplaySource{
		name:     src.Name(),
		numPages: src.NumPages(),
		packed:   packed,
		opStarts: opStarts,
	}
}

// Fork returns an independent cursor over the same shared stream.
func (r *ReplaySource) Fork() *ReplaySource {
	cp := *r
	cp.pos = 0
	return &cp
}

// Ops returns the number of operations in the shared stream.
func (r *ReplaySource) Ops() int64 { return int64(len(r.opStarts)) - 1 }

// Name implements Source with the recorded source's name.
func (r *ReplaySource) Name() string { return r.name }

// NumPages implements Source.
func (r *ReplaySource) NumPages() int { return r.numPages }

// AdvanceTime implements Source; the stream is clock-free by construction.
func (r *ReplaySource) AdvanceTime(int64) {}

// ClockFree implements the marker: a replayed clock-free stream is itself
// clock-free.
func (r *ReplaySource) ClockFree() bool { return true }

// UnpackAccess decodes one packed stream entry (see PackedViewSource).
func UnpackAccess(v uint32) Access {
	return Access{Page: mem.PageID(v >> 2), Write: v&1 != 0, EndOp: v&2 != 0}
}

// decode appends packed accesses [lo, hi) to dst.
func (r *ReplaySource) decode(dst []Access, lo, hi int32) []Access {
	for _, v := range r.packed[lo:hi] {
		dst = append(dst, UnpackAccess(v))
	}
	return dst
}

// NextOp implements Source. The packed stream carries EndOp bits, but the
// Access contract says single-op fetches leave EndOp false, so the final
// access's flag is cleared.
func (r *ReplaySource) NextOp(dst []Access) []Access {
	lo, hi := r.opStarts[r.pos], r.opStarts[r.pos+1]
	if r.pos++; r.pos >= int(r.Ops()) {
		r.pos = 0
	}
	dst = r.decode(dst, lo, hi)
	dst[len(dst)-1].EndOp = false
	return dst
}

// NextBatch implements BatchSource as one bulk decode per call.
func (r *ReplaySource) NextBatch(dst []Access, max int) []Access {
	n := int(r.Ops())
	for max > 0 {
		take := max
		if rem := n - r.pos; take > rem {
			take = rem
		}
		dst = r.decode(dst, r.opStarts[r.pos], r.opStarts[r.pos+take])
		r.pos += take
		if r.pos == n {
			r.pos = 0
		}
		max -= take
	}
	return dst
}

// PackedViewSource is an optional refinement of BatchSource for sources
// that store their stream packed (UnpackAccess's encoding): NextPackedView
// returns up to max whole operations as a read-only slice of internal
// storage, valid until the next call. For max > 0 an empty view means the
// source is exhausted or has permanently failed (a file-backed reader's
// latched Err), mirroring NextOp's empty-slice convention.
// Consumers that only iterate a batch (the simulator) prefer it over
// NextBatch: no copy, no decode materialization, and a quarter of the
// memory traffic of an []Access batch.
type PackedViewSource interface {
	NextPackedView(max int) []uint32
}

// NextPackedView implements PackedViewSource: the returned batch aliases
// the shared stream. A view never spans the wrap-around, so it may hold
// fewer than max ops.
func (r *ReplaySource) NextPackedView(max int) []uint32 {
	n := int(r.Ops())
	take := max
	if rem := n - r.pos; take > rem {
		take = rem
	}
	lo, hi := r.opStarts[r.pos], r.opStarts[r.pos+take]
	if r.pos += take; r.pos == n {
		r.pos = 0
	}
	return r.packed[lo:hi]
}

// AsBatchSource returns src as a BatchSource. Sources with a native
// NextBatch are returned unchanged. Anything else is wrapped in an adapter
// that fetches through NextOp, filling the requested batch — except when
// src is a ShiftSource, where the adapter degrades to one op per call.
//
// The degradation is a contract, not an optimization shortfall. The
// simulator delivers AdvanceTime while it consumes a batch, so every op
// in a batch is generated before the ticks of the ops ahead of it have
// been delivered. For most sources that is invisible: generation does not
// read the clock. An op-count-triggered shift is the exception — it
// timestamps itself with the last AdvanceTime it saw, so the shifting op
// must not be generated until every earlier op's ticks are delivered. A
// native implementation knows its own schedule and caps its batches right
// before the shifting op (see ShiftingZipfSource.NextBatch); a generic
// adapter cannot know the schedule, so one op per call — which makes the
// fetch schedule identical to the single-op reference path — is the only
// batch size that provably preserves shift timestamps. The composition
// combinators (compose.go) inherit the same rule: any combinator with a
// ShiftSource child runs its clock-sensitive fetches one op per call, and
// the regression tests in compose_test.go hold every nesting to it.
//
// Consequently a capture or replay wrapped in such an adapter is
// byte-identical for every consumer batch size, at the cost of per-op
// dispatch; implement BatchSource natively (with correct capping) where
// that overhead matters.
func AsBatchSource(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	_, shift := src.(ShiftSource)
	return &opAdapter{src: src, single: shift}
}

// opAdapter lifts a plain Source to BatchSource via repeated NextOp calls.
type opAdapter struct {
	src    Source
	single bool
}

func (a *opAdapter) Name() string          { return a.src.Name() }
func (a *opAdapter) NumPages() int         { return a.src.NumPages() }
func (a *opAdapter) AdvanceTime(now int64) { a.src.AdvanceTime(now) }

func (a *opAdapter) NextOp(dst []Access) []Access { return a.src.NextOp(dst) }

// NextBatch implements BatchSource by looping NextOp. An empty op stops the
// batch: empty ops are how erroring sources (failed replays) present, and
// they cannot be represented in a flat batch.
func (a *opAdapter) NextBatch(dst []Access, max int) []Access {
	if a.single && max > 1 {
		max = 1
	}
	for i := 0; i < max; i++ {
		n := len(dst)
		dst = a.src.NextOp(dst)
		if len(dst) == n {
			break
		}
		dst[len(dst)-1].EndOp = true
	}
	return dst
}
