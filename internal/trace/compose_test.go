package trace

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/mem"
)

// hidden hides every capability but the bare Source interface, forcing
// AsBatchSource onto its generic adapter — the single-op reference path.
type hidden struct{ src Source }

func (h *hidden) Name() string                 { return h.src.Name() }
func (h *hidden) NumPages() int                { return h.src.NumPages() }
func (h *hidden) NextOp(dst []Access) []Access { return h.src.NextOp(dst) }
func (h *hidden) AdvanceTime(now int64)        { h.src.AdvanceTime(now) }

// hiddenShift additionally keeps the ShiftSource interface visible, like
// the simulator's view of a shift-capable workload.
type hiddenShift struct{ hidden }

func (h *hiddenShift) ShiftTime() int64 { return h.src.(ShiftSource).ShiftTime() }

func hide(src Source) Source {
	if _, ok := src.(ShiftSource); ok {
		return &hiddenShift{hidden{src}}
	}
	return &hidden{src}
}

// drive consumes ops operations from src the way the simulator does:
// batches of up to batch ops, a fixed virtual latency per access, and
// AdvanceTime delivered at tick boundaries while consuming. It returns
// the flat access stream (EndOp set on every op's final access) and the
// final ShiftTime (-1 for shift-less sources).
func drive(t *testing.T, src Source, ops int64, batch int) ([]Access, int64) {
	t.Helper()
	bs := AsBatchSource(src)
	const accessNs = 50
	const tickNs = 1_000
	var (
		stream   []Access
		buf      []Access
		now      int64
		nextTick int64 = tickNs
		done     int64
	)
	for done < ops {
		want := batch
		if rem := ops - done; rem < int64(want) {
			want = int(rem)
		}
		buf = bs.NextBatch(buf[:0], want)
		if len(buf) == 0 {
			t.Fatalf("%s: source produced no ops after %d", src.Name(), done)
		}
		for _, a := range buf {
			stream = append(stream, a)
			now += accessNs
			if a.EndOp {
				done++
				for now >= nextTick {
					src.AdvanceTime(now)
					nextTick += tickNs
				}
			}
		}
	}
	shift := int64(-1)
	if ss, ok := src.(ShiftSource); ok {
		shift = ss.ShiftTime()
	}
	return stream, shift
}

func streamsEqual(a, b []Access) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mustMix builds a mix or fails the test.
func mustMix(t *testing.T, name string, parts ...Weighted) Source {
	t.Helper()
	m, err := NewMix(name, parts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMixScheduleIsDeterministicWRR(t *testing.T) {
	// Weights 3:1 over two scans yields the smooth-WRR cycle A A B A.
	a := NewScanSource("a", 4)
	b := NewScanSource("b", 8)
	m := mustMix(t, "", Weighted{a, 3}, Weighted{b, 1})
	if m.NumPages() != 12 {
		t.Fatalf("NumPages = %d, want 12 (4+8)", m.NumPages())
	}
	wantPages := []mem.PageID{
		0, 1, 4 + 0, 2, // A A B A  (B remapped up by A's 4 pages)
		3, 0, 4 + 1, 1, // cycle repeats; scans wrap their own spaces
	}
	var buf []Access
	for i, want := range wantPages {
		buf = m.NextOp(buf[:0])
		if len(buf) != 1 || buf[0].Page != want {
			t.Fatalf("op %d: got %+v, want page %d", i, buf, want)
		}
		if buf[0].EndOp {
			t.Fatalf("op %d: NextOp must leave EndOp false", i)
		}
	}
}

func TestMixRemapsTenantsDisjointly(t *testing.T) {
	a := NewZipfSource("a", 100, 1.0, 0, 1)
	b := NewZipfSource("b", 200, 1.0, 0, 2)
	c := NewZipfSource("c", 50, 1.0, 0, 3)
	m := mustMix(t, "", Weighted{a, 1}, Weighted{b, 1}, Weighted{c, 1})
	if m.NumPages() != 350 {
		t.Fatalf("NumPages = %d, want 350", m.NumPages())
	}
	// Tenants occupy [0,100), [100,300), [300,350): with a 1:1:1 schedule
	// every third op belongs to one tenant's range.
	ranges := [][2]mem.PageID{{0, 100}, {100, 300}, {300, 350}}
	var buf []Access
	for i := 0; i < 300; i++ {
		buf = m.NextOp(buf[:0])
		r := ranges[i%3]
		if p := buf[0].Page; p < r[0] || p >= r[1] {
			t.Fatalf("op %d: page %d outside tenant range [%d,%d)", i, p, r[0], r[1])
		}
	}
}

func TestPhasesSwitchAtExactOpCounts(t *testing.T) {
	a := NewScanSource("a", 4)
	b := NewScanSource("b", 16)
	p, err := NewPhases("", Stage{a, 5}, Stage{b, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPages() != 16 {
		t.Fatalf("NumPages = %d, want max(4,16)", p.NumPages())
	}
	var buf []Access
	for i := 0; i < 20; i++ {
		buf = p.NextOp(buf[:0])
		fromA := buf[0].Page < 4 && i < 5
		fromB := i >= 5
		if !fromA && !fromB {
			t.Fatalf("op %d: page %d came from the wrong stage", i, buf[0].Page)
		}
	}
}

func TestConcatIsTwoStagePhases(t *testing.T) {
	a := NewScanSource("a", 4)
	b := NewScanSource("b", 4)
	c, err := NewConcat("", a, 3, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Name(); got != "phases(a@3,b)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestRepeatLoopsCapturedPrefix(t *testing.T) {
	s := NewScanSource("s", 10)
	r, err := NewRepeat("", s, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf []Access
	for i := 0; i < 12; i++ {
		buf = r.NextOp(buf[:0])
		if want := mem.PageID(i % 3); buf[0].Page != want {
			t.Fatalf("op %d: page %d, want %d (looping first 3 scan ops)", i, buf[0].Page, want)
		}
		if buf[0].EndOp {
			t.Fatalf("op %d: NextOp must leave EndOp false", i)
		}
	}
}

func TestOffsetAndScaleTransformPages(t *testing.T) {
	o, err := NewOffset("", NewScanSource("s", 4), 100)
	if err != nil {
		t.Fatal(err)
	}
	if o.NumPages() != 104 {
		t.Fatalf("offset NumPages = %d, want 104", o.NumPages())
	}
	buf := o.NextOp(nil)
	if buf[0].Page != 100 {
		t.Fatalf("offset first page = %d, want 100", buf[0].Page)
	}

	sc, err := NewScale("", NewScanSource("s", 4), 8)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumPages() != 32 {
		t.Fatalf("scale NumPages = %d, want 32", sc.NumPages())
	}
	var pages []mem.PageID
	for i := 0; i < 4; i++ {
		buf = sc.NextOp(buf[:0])
		pages = append(pages, buf[0].Page)
	}
	for i, p := range pages {
		if want := mem.PageID(i * 8); p != want {
			t.Fatalf("scale op %d: page %d, want %d", i, p, want)
		}
	}
}

func TestCombinatorConstructorErrors(t *testing.T) {
	z := NewZipfSource("z", 64, 1.0, 0, 1)
	cases := []struct {
		name string
		err  error
	}{
		{"one-tenant mix", func() error { _, err := NewMix("", Weighted{z, 1}); return err }()},
		{"zero weight", func() error { _, err := NewMix("", Weighted{z, 0}, Weighted{z, 1}); return err }()},
		{"one-stage phases", func() error { _, err := NewPhases("", Stage{z, 0}); return err }()},
		{"zero mid quota", func() error { _, err := NewPhases("", Stage{z, 0}, Stage{z, 0}); return err }()},
		{"final with quota", func() error { _, err := NewPhases("", Stage{z, 5}, Stage{z, 5}); return err }()},
		{"zero repeat", func() error { _, err := NewRepeat("", z, 0); return err }()},
		{"negative offset", func() error { _, err := NewOffset("", z, -1); return err }()},
		{"zero scale", func() error { _, err := NewScale("", z, 0); return err }()},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

func TestClockFreePropagation(t *testing.T) {
	cf := func(s Source) bool {
		c, ok := s.(ClockFree)
		return ok && c.ClockFree()
	}
	z1 := NewZipfSource("z1", 64, 1.0, 0, 1)
	z2 := NewZipfSource("z2", 64, 1.0, 0, 2)
	shift := NewShiftingZipfSource("sh", 64, 1.0, 0, 3, 100, 0.5)

	if m := mustMix(t, "", Weighted{z1, 1}, Weighted{z2, 1}); !cf(m) {
		t.Error("mix of clock-free tenants must be clock-free")
	}
	if m := mustMix(t, "", Weighted{z1, 1}, Weighted{shift, 1}); cf(m) {
		t.Error("mix with a shifting tenant must not be clock-free")
	}
	p, _ := NewPhases("", Stage{z1, 10}, Stage{z2, 0})
	if !cf(p) {
		t.Error("phases over clock-free stages must be clock-free")
	}
	o, _ := NewOffset("", shift, 10)
	if cf(o) {
		t.Error("offset of a shifting source must not be clock-free")
	}
	r, _ := NewRepeat("", z1, 10)
	if !cf(r) {
		t.Error("repeat of a clock-free source must be clock-free")
	}
}

func TestShiftSourcePromotion(t *testing.T) {
	z := NewZipfSource("z", 64, 1.0, 0, 1)
	shift := NewShiftingZipfSource("sh", 64, 1.0, 0, 3, 10, 0.5)

	plain := mustMix(t, "", Weighted{z, 1}, Weighted{NewZipfSource("y", 64, 1.0, 0, 2), 1})
	if _, ok := plain.(ShiftSource); ok {
		t.Error("mix without shifting tenants must not implement ShiftSource")
	}
	m := mustMix(t, "", Weighted{z, 1}, Weighted{shift, 1})
	ss, ok := m.(ShiftSource)
	if !ok {
		t.Fatal("mix with a shifting tenant must implement ShiftSource")
	}
	if got := ss.ShiftTime(); got != -1 {
		t.Fatalf("ShiftTime before any shift = %d, want -1", got)
	}
	// Deep nesting keeps the interface: offset(phases(mix(shift,...),...)).
	inner := mustMix(t, "", Weighted{shift, 1}, Weighted{z, 1})
	ph, err := NewPhases("", Stage{inner, 100}, Stage{NewZipfSource("t", 64, 1.0, 0, 9), 0})
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewOffset("", ph, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := off.(ShiftSource); !ok {
		t.Error("shift capability must survive arbitrary nesting")
	}
}

// erringSource is a stub child with a latched stream error and a Close.
type erringSource struct {
	err    error
	closed bool
}

func (e *erringSource) Name() string                 { return "stub" }
func (e *erringSource) NumPages() int                { return 8 }
func (e *erringSource) AdvanceTime(int64)            {}
func (e *erringSource) Err() error                   { return e.err }
func (e *erringSource) Close() error                 { e.closed = true; return nil }
func (e *erringSource) NextOp(dst []Access) []Access { return dst } // dead stream

func TestErrAndClosePropagate(t *testing.T) {
	stubErr := errors.New("stream broke")
	stub := &erringSource{err: stubErr}
	z := NewZipfSource("z", 64, 1.0, 0, 1)
	m := mustMix(t, "", Weighted{z, 1}, Weighted{stub, 1})
	es, ok := m.(interface{ Err() error })
	if !ok {
		t.Fatal("combinators must expose Err()")
	}
	if !errors.Is(es.Err(), stubErr) {
		t.Fatalf("Err() = %v, want the child's %v", es.Err(), stubErr)
	}
	cl, ok := m.(interface{ Close() error })
	if !ok {
		t.Fatal("combinators must expose Close()")
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if !stub.closed {
		t.Error("Close() must reach every child")
	}
}

// TestAsBatchSourceDegradesUnknownShiftCombinators is the regression test
// for the adapter contract: a shift-capable source with no native
// NextBatch — here a combinator whose batching capability is hidden —
// must be fetched one op per call, so its op-count-triggered shift
// observes the virtual clock on exactly the single-op schedule.
func TestAsBatchSourceDegradesUnknownShiftCombinators(t *testing.T) {
	shift := NewShiftingZipfSource("sh", 256, 1.0, 0, 5, 500, 0.5)
	m := mustMix(t, "", Weighted{shift, 1}, Weighted{NewZipfSource("z", 256, 1.0, 0, 6), 1})
	bs := AsBatchSource(hide(m))
	for call := 0; call < 10; call++ {
		got := bs.NextBatch(nil, 50)
		if n := countOps(got); n != 1 {
			t.Fatalf("call %d: adapter produced %d ops per call for an unknown ShiftSource, want 1", call, n)
		}
	}
}

// TestCombinatorBatchingMatchesSingleOp is the core determinism contract:
// for every combinator — including nestings around an op-count-triggered
// distribution shift — the batched fetch path must produce the identical
// access stream and the identical shift timestamp as the single-op
// reference schedule, for any batch size.
func TestCombinatorBatchingMatchesSingleOp(t *testing.T) {
	const ops = 4_000
	newShift := func(seed uint64) Source {
		return NewShiftingZipfSource("sh", 512, 1.0, 0.1, seed, 1_200, 2.0/3.0)
	}
	newZipf := func(seed uint64) Source {
		return NewZipfSource("z", 512, 0.9, 0, seed)
	}
	builders := []struct {
		name  string
		build func() Source
	}{
		{"mix/clockfree", func() Source {
			return mustMix(t, "", Weighted{newZipf(1), 0.7}, Weighted{newZipf(2), 0.3})
		}},
		{"mix/shift", func() Source {
			return mustMix(t, "", Weighted{newShift(3), 0.6}, Weighted{newZipf(4), 0.4})
		}},
		{"phases/shift-then-zipf", func() Source {
			p, err := NewPhases("", Stage{newShift(5), 2_500}, Stage{newZipf(6), 0})
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"repeat/shift", func() Source {
			r, err := NewRepeat("", newShift(7), 2_000)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}},
		{"offset/shift", func() Source {
			o, err := NewOffset("", newShift(8), 333)
			if err != nil {
				t.Fatal(err)
			}
			return o
		}},
		{"scale/shift", func() Source {
			s, err := NewScale("", newShift(9), 3)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"deep/mix(offset(phases(shift,zipf)),zipf)", func() Source {
			p, err := NewPhases("", Stage{newShift(10), 1_800}, Stage{newZipf(11), 0})
			if err != nil {
				t.Fatal(err)
			}
			o, err := NewOffset("", p, 64)
			if err != nil {
				t.Fatal(err)
			}
			return mustMix(t, "", Weighted{o, 0.5}, Weighted{newZipf(12), 0.5})
		}},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			refStream, refShift := drive(t, hide(b.build()), ops, 1)
			for _, batch := range []int{3, 7, 64, 1024} {
				gotStream, gotShift := drive(t, b.build(), ops, batch)
				if !streamsEqual(refStream, gotStream) {
					t.Fatalf("batch=%d: access stream diverges from single-op schedule", batch)
				}
				if gotShift != refShift {
					t.Fatalf("batch=%d: shift timestamp %d, single-op schedule says %d", batch, gotShift, refShift)
				}
			}
			if refShift == -1 {
				if _, ok := b.build().(ShiftSource); ok {
					t.Fatal("shift never fired: the scenario does not exercise timestamping")
				}
			}
		})
	}
}

func TestCombinatorNamesSynthesize(t *testing.T) {
	z := NewZipfSource("zipf-a", 64, 1.0, 0, 1)
	y := NewZipfSource("zipf-b", 64, 1.0, 0, 2)
	m := mustMix(t, "", Weighted{z, 0.7}, Weighted{y, 0.3})
	if want := "mix(0.7*zipf-a,0.3*zipf-b)"; m.Name() != want {
		t.Fatalf("mix Name = %q, want %q", m.Name(), want)
	}
	r, _ := NewRepeat("", z, 42)
	if want := "repeat(zipf-a@42)"; r.Name() != want {
		t.Fatalf("repeat Name = %q, want %q", r.Name(), want)
	}
	o, _ := NewOffset("", z, 9)
	if want := "offset(zipf-a+9)"; o.Name() != want {
		t.Fatalf("offset Name = %q, want %q", o.Name(), want)
	}
	s, _ := NewScale("", z, 4)
	if want := "scale(4*zipf-a)"; s.Name() != want {
		t.Fatalf("scale Name = %q, want %q", s.Name(), want)
	}
	named := mustMix(t, "custom", Weighted{z, 1}, Weighted{y, 1})
	if named.Name() != "custom" {
		t.Fatalf("explicit name lost: %q", named.Name())
	}
}

func ExampleNewMix() {
	a := NewZipfSource("tenant-a", 1<<10, 1.0, 0, 1)
	b := NewZipfSource("tenant-b", 1<<10, 0.8, 0, 2)
	m, _ := NewMix("", Weighted{Source: a, Weight: 0.7}, Weighted{Source: b, Weight: 0.3})
	fmt.Println(m.Name(), m.NumPages())
	// Output: mix(0.7*tenant-a,0.3*tenant-b) 2048
}
