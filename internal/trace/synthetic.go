package trace

import (
	"repro/internal/mem"
	"repro/internal/xrand"
)

// ZipfSource emits single-page operations with Zipf-distributed popularity
// over a page range, optionally remapping ranks through a permutation so
// different instances (or epochs) hash popularity onto different pages.
type ZipfSource struct {
	name  string
	n     int
	zipf  *xrand.Zipf
	perm  []uint64 // rank -> page
	rng   *xrand.RNG
	write float64
}

// NewZipfSource creates a source over n pages with exponent s.
// writeFrac in [0,1] is the fraction of operations that are stores.
func NewZipfSource(name string, n int, s float64, writeFrac float64, seed uint64) *ZipfSource {
	rng := xrand.New(seed)
	perm := make([]uint64, n)
	for i := range perm {
		perm[i] = uint64(i)
	}
	rng.ShuffleUint64s(perm)
	return &ZipfSource{
		name:  name,
		n:     n,
		zipf:  xrand.NewZipf(rng, s, uint64(n)),
		perm:  perm,
		rng:   rng,
		write: writeFrac,
	}
}

// Name implements Source.
func (z *ZipfSource) Name() string { return z.name }

// NumPages implements Source.
func (z *ZipfSource) NumPages() int { return z.n }

// NextOp implements Source.
func (z *ZipfSource) NextOp(dst []Access) []Access {
	rank := z.zipf.Next()
	w := z.rng.Float64() < z.write
	return append(dst, Access{Page: mem.PageID(z.perm[rank]), Write: w})
}

// NextBatch implements BatchSource: ZipfSource has no time-driven
// behaviour, so it generates max single-access ops back to back.
func (z *ZipfSource) NextBatch(dst []Access, max int) []Access {
	for i := 0; i < max; i++ {
		rank := z.zipf.Next()
		w := z.rng.Float64() < z.write
		dst = append(dst, Access{Page: mem.PageID(z.perm[rank]), Write: w, EndOp: true})
	}
	return dst
}

// AdvanceTime implements Source.
func (z *ZipfSource) AdvanceTime(int64) {}

// Reshuffle remaps which pages are popular, keeping the same skew. frac is
// the fraction of the permutation to rotate: 2/3 reproduces §2.3.2's
// "2/3 of previously hot data are no longer hot".
func (z *ZipfSource) Reshuffle(frac float64) {
	k := int(frac * float64(z.n))
	if k <= 1 {
		return
	}
	// Rotate the top-k ranks' page assignments with fresh pages drawn from
	// the cold tail, so previously-hot pages go cold and cold pages go hot.
	for i := 0; i < k; i++ {
		j := k + z.rng.Intn(z.n-k)
		z.perm[i], z.perm[j] = z.perm[j], z.perm[i]
	}
}

// ShiftingZipfSource wraps ZipfSource and performs a single Reshuffle after
// a fixed number of operations, reproducing the Fig. 4 / Table 3 adaptation
// scenario (§2.3.2: at a fixed point, 2/3 of previously hot data turn cold).
// Triggering on operation count keeps the schedule deterministic regardless
// of the latency model; the virtual time of the shift is recorded when it
// fires so adaptation time can be measured against it.
type ShiftingZipfSource struct {
	*ZipfSource
	shiftAfter int64 // ops before the shift
	frac       float64
	ops        int64
	shiftedAt  int64
	lastNow    int64
	done       bool
}

// NewShiftingZipfSource creates a Zipf source that rotates frac of its hot
// set after shiftAfter operations.
func NewShiftingZipfSource(name string, n int, s, writeFrac float64, seed uint64, shiftAfter int64, frac float64) *ShiftingZipfSource {
	return &ShiftingZipfSource{
		ZipfSource: NewZipfSource(name, n, s, writeFrac, seed),
		shiftAfter: shiftAfter,
		frac:       frac,
		shiftedAt:  -1,
	}
}

// NextOp implements Source, triggering the shift once the op budget passes.
func (s *ShiftingZipfSource) NextOp(dst []Access) []Access {
	s.ops++
	if !s.done && s.ops >= s.shiftAfter {
		s.Reshuffle(s.frac)
		s.shiftedAt = s.lastNow
		s.done = true
	}
	return s.ZipfSource.NextOp(dst)
}

// NextBatch implements BatchSource. The shift timestamps itself with the
// clock value of the last AdvanceTime before the shifting op, so that op
// must not be generated ahead of the simulator's tick processing: the batch
// is capped to end right before it, making the shifting op the first of its
// own batch — by which point every earlier op's ticks have been delivered,
// exactly as on the single-op schedule.
func (s *ShiftingZipfSource) NextBatch(dst []Access, max int) []Access {
	if !s.done {
		if before := s.shiftAfter - 1 - s.ops; before > 0 && int64(max) > before {
			max = int(before)
		}
	}
	for i := 0; i < max; i++ {
		dst = s.NextOp(dst)
		dst[len(dst)-1].EndOp = true
	}
	return dst
}

// AdvanceTime implements Source, tracking the virtual clock so the shift
// can be timestamped.
func (s *ShiftingZipfSource) AdvanceTime(now int64) { s.lastNow = now }

// ShiftTime implements ShiftSource. It returns -1 until the shift fires.
func (s *ShiftingZipfSource) ShiftTime() int64 { return s.shiftedAt }

// ScanSource sweeps the page space sequentially, the one-time-only access
// pattern §7 discusses (scanning pollutes recency-based systems' fast tier).
type ScanSource struct {
	name string
	n    int
	pos  uint64
}

// NewScanSource creates a sequential sweep over n pages.
func NewScanSource(name string, n int) *ScanSource {
	return &ScanSource{name: name, n: n}
}

// Name implements Source.
func (s *ScanSource) Name() string { return s.name }

// NumPages implements Source.
func (s *ScanSource) NumPages() int { return s.n }

// NextOp implements Source.
func (s *ScanSource) NextOp(dst []Access) []Access {
	p := mem.PageID(s.pos % uint64(s.n))
	s.pos++
	return append(dst, Access{Page: p})
}

// NextBatch implements BatchSource: a scan is position-driven only.
func (s *ScanSource) NextBatch(dst []Access, max int) []Access {
	for i := 0; i < max; i++ {
		p := mem.PageID(s.pos % uint64(s.n))
		s.pos++
		dst = append(dst, Access{Page: p, EndOp: true})
	}
	return dst
}

// AdvanceTime implements Source.
func (s *ScanSource) AdvanceTime(int64) {}

// MixSource interleaves two sources with a fixed probability, e.g. a Zipf
// working set polluted by a background scan.
type MixSource struct {
	name string
	a, b Source
	pA   float64
	rng  *xrand.RNG
	n    int
	// shifty records that a child is a ShiftSource, whose op-count-
	// triggered shift must see the single-op AdvanceTime schedule; batches
	// then degrade to one op per call (see AsBatchSource).
	shifty bool
}

// NewMixSource draws from a with probability pA, else from b. Both sources
// must address the same page space size.
func NewMixSource(name string, a, b Source, pA float64, seed uint64) *MixSource {
	n := a.NumPages()
	if b.NumPages() > n {
		n = b.NumPages()
	}
	_, sa := a.(ShiftSource)
	_, sb := b.(ShiftSource)
	return &MixSource{name: name, a: a, b: b, pA: pA, rng: xrand.New(seed), n: n,
		shifty: sa || sb}
}

// Name implements Source.
func (m *MixSource) Name() string { return m.name }

// NumPages implements Source.
func (m *MixSource) NumPages() int { return m.n }

// NextOp implements Source.
func (m *MixSource) NextOp(dst []Access) []Access {
	if m.rng.Float64() < m.pA {
		return m.a.NextOp(dst)
	}
	return m.b.NextOp(dst)
}

// NextBatch implements BatchSource. When a child can shift, the mix cannot
// know its schedule, so batches fall back to one op per call.
func (m *MixSource) NextBatch(dst []Access, max int) []Access {
	if m.shifty && max > 1 {
		max = 1
	}
	for i := 0; i < max; i++ {
		n := len(dst)
		dst = m.NextOp(dst)
		if len(dst) == n {
			break
		}
		dst[len(dst)-1].EndOp = true
	}
	return dst
}

// AdvanceTime implements Source.
func (m *MixSource) AdvanceTime(now int64) {
	m.a.AdvanceTime(now)
	m.b.AdvanceTime(now)
}

// ClockFree implements the marker: Zipf draws never consult the clock.
func (z *ZipfSource) ClockFree() bool { return true }

// ClockFree implements the marker: the shift stamps itself with the
// virtual clock, so a shifting source is never clock-free.
func (s *ShiftingZipfSource) ClockFree() bool { return false }

// ClockFree implements the marker: a scan is position-driven only.
func (s *ScanSource) ClockFree() bool { return true }

// ClockFree implements the marker: a mix is clock-free when both children
// declare themselves clock-free.
func (m *MixSource) ClockFree() bool {
	ca, ok := m.a.(ClockFree)
	if !ok || !ca.ClockFree() {
		return false
	}
	cb, ok := m.b.(ClockFree)
	return ok && cb.ClockFree()
}
