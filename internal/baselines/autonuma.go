package baselines

import (
	"repro/internal/mem"
	"repro/internal/tier"
)

// AutoNUMAConfig parameterizes the AutoNUMA baseline (§2.3.2): the Linux
// kernel's NUMA-balancing hint-fault mechanism with MGLRU-based demotion.
type AutoNUMAConfig struct {
	// NumPages is the page-space size.
	NumPages int
	// ScanWindowPages is how many pages each scan interval unmaps
	// (256 MB in the kernel, scaled to the simulated footprint).
	ScanWindowPages int
	// HintThresholdNs promotes a faulting page when the time between
	// unmap and fault is below this (the kernel uses 1 s).
	HintThresholdNs int64
	// AgeNs is the MGLRU demotion age: fast-tier pages idle longer than
	// this are demotion candidates.
	AgeNs int64
	// PromoWatermark / DemoteWatermark mirror kernel watermarks.
	PromoWatermark  float64
	DemoteWatermark float64
}

// DefaultAutoNUMAConfig returns kernel-like defaults scaled to virtual time.
func DefaultAutoNUMAConfig(numPages int) AutoNUMAConfig {
	w := numPages / 8
	if w < 512 {
		w = 512
	}
	return AutoNUMAConfig{
		NumPages:        numPages,
		ScanWindowPages: w,
		HintThresholdNs: 50_000_000,  // scaled 1 s
		AgeNs:           100_000_000, // scaled MGLRU aging horizon
		PromoWatermark:  0.02,
		DemoteWatermark: 0.08,
	}
}

// AutoNUMA promotes pages on recent hint faults regardless of access
// history — the recency-based behaviour whose misclassification of cold
// pages §2.3.2 demonstrates. It implements tier.FaultDriven.
type AutoNUMA struct {
	cfg        AutoNUMAConfig
	env        tier.Env
	unmapped   []uint64 // bitmap
	windowTime []int64  // unmap time per scan window
	cursor     int      // next page to unmap
	demoCursor mem.PageID
	lastScanNs int64
	stats      AutoNUMAStats
}

// AutoNUMAStats counts baseline activity.
type AutoNUMAStats struct {
	Faults   uint64
	Promoted uint64
	Demoted  uint64
	Scans    uint64
}

var _ tier.FaultDriven = (*AutoNUMA)(nil)

// NewAutoNUMA constructs the baseline.
func NewAutoNUMA(cfg AutoNUMAConfig) *AutoNUMA {
	nw := (cfg.NumPages + cfg.ScanWindowPages - 1) / cfg.ScanWindowPages
	return &AutoNUMA{
		cfg:        cfg,
		unmapped:   make([]uint64, (cfg.NumPages+63)/64),
		windowTime: make([]int64, nw),
	}
}

// Name implements tier.Policy.
func (a *AutoNUMA) Name() string { return "AutoNUMA" }

// Attach implements tier.Policy.
func (a *AutoNUMA) Attach(env tier.Env) { a.env = env }

// MetadataBytes implements tier.Policy: the unmap bitmap, window stamps,
// and the kernel's per-page NUMA-balancing fields folded into struct page
// (modeled at 2 B per page).
func (a *AutoNUMA) MetadataBytes() int64 {
	return int64(len(a.unmapped))*8 + int64(len(a.windowTime))*8 + int64(a.cfg.NumPages)*2
}

// Stats returns a copy of the activity counters.
func (a *AutoNUMA) Stats() AutoNUMAStats { return a.stats }

// OnSamples implements tier.Policy. AutoNUMA does not consume hardware
// samples — it is entirely fault-driven.
func (a *AutoNUMA) OnSamples([]tier.Sample) {}

// WantsFault implements tier.FaultDriven: accesses to unmapped pages fault.
func (a *AutoNUMA) WantsFault(p mem.PageID) bool {
	return a.unmapped[p>>6]&(1<<(p&63)) != 0
}

// OnFault implements tier.FaultDriven: measure hint-fault latency and
// promote slow-tier pages with recent faults — even if this is the page's
// only access ever (requirement-1 failure the paper identifies).
func (a *AutoNUMA) OnFault(p mem.PageID, t mem.Tier) {
	a.stats.Faults++
	a.unmapped[p>>6] &^= 1 << (p & 63)
	w := int(p) / a.cfg.ScanWindowPages
	lat := a.env.Now() - a.windowTime[w]
	if t == mem.Slow && lat < a.cfg.HintThresholdNs {
		if err := a.env.Promote(p); err != nil {
			a.demoteToWatermark()
			if a.env.Promote(p) == nil {
				a.stats.Promoted++
			}
		} else {
			a.stats.Promoted++
		}
	}
}

// Tick implements tier.Policy: unmap the next scan window and run the
// watermark demotion check.
func (a *AutoNUMA) Tick() {
	a.stats.Scans++
	now := a.env.Now()
	start := a.cursor
	for i := 0; i < a.cfg.ScanWindowPages; i++ {
		p := (start + i) % a.cfg.NumPages
		a.unmapped[p>>6] |= 1 << (uint(p) & 63)
	}
	a.windowTime[start/a.cfg.ScanWindowPages] = now
	a.cursor = (start + a.cfg.ScanWindowPages) % a.cfg.NumPages
	// Unmap cost: one PTE clear per page plus a TLB shootdown.
	a.env.Charge(float64(a.cfg.ScanWindowPages)*5 + 2000)

	m := a.env.Mem()
	if float64(m.FastFree()) < a.cfg.PromoWatermark*float64(m.FastCap()) {
		a.demoteToWatermark()
	}
}

// demoteToWatermark demotes idle fast-tier pages (MGLRU generations
// approximated by last-access age) scanning round-robin so successive
// passes make progress.
func (a *AutoNUMA) demoteToWatermark() {
	now := a.env.Now()
	if now-a.lastScanNs < scanMinIntervalNs {
		return
	}
	a.lastScanNs = now
	m := a.env.Mem()
	target := int(a.cfg.DemoteWatermark * float64(m.FastCap()))
	if target < 1 {
		target = 1
	}
	cutoff := now - a.cfg.AgeNs
	// Two passes: first demote pages idle beyond the aging horizon; if
	// that frees too little, tighten the horizon and continue.
	for pass := 0; pass < 2 && m.FastFree() < target; pass++ {
		visited := 0
		last := a.demoCursor
		m.ScanFastFrom(a.demoCursor, func(p mem.PageID) bool {
			visited++
			last = p
			if a.env.LastAccess(p) < cutoff {
				if a.env.Demote(p) == nil {
					a.stats.Demoted++
				}
			}
			return m.FastFree() < target
		})
		a.demoCursor = last + 1
		a.env.Charge(float64(visited) * 20)
		cutoff = now - a.cfg.AgeNs/8
	}
}

// FaultBitmap implements tier.FaultBitmapped with the live unmapped bitmap.
func (a *AutoNUMA) FaultBitmap() []uint64 { return a.unmapped }
