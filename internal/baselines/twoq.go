package baselines

import (
	"repro/internal/mem"
	"repro/internal/tier"
)

const (
	twoqA1in uint8 = 1 + iota
	twoqAm
	twoqA1out
)

// TwoQ adapts Johnson & Shasha's 2Q algorithm (VLDB'94) to tiering (§5.2):
// first-touch pages enter the FIFO A1in queue; pages re-referenced after
// falling out of A1in (tracked by the A1out ghost) graduate to the Am LRU.
// The paper uses the original's tuning: Kin = c/4, Kout = c/2.
type TwoQ struct {
	env      tier.Env
	lists    *pageLists
	c        int
	kin, kou int
	stats    TwoQStats
}

// TwoQStats counts policy activity.
type TwoQStats struct {
	Samples  uint64
	Hits     uint64
	Promoted uint64
	Demoted  uint64
}

var _ tier.Policy = (*TwoQ)(nil)

// NewTwoQ constructs the policy; capacity is the fast tier size in pages.
func NewTwoQ(numPages, capacity int) *TwoQ {
	kin := max(1, capacity/4)
	kou := max(1, capacity/2)
	return &TwoQ{lists: newPageLists(numPages, 3), c: capacity, kin: kin, kou: kou}
}

// Name implements tier.Policy.
func (t *TwoQ) Name() string { return "TwoQ" }

// Attach implements tier.Policy.
func (t *TwoQ) Attach(env tier.Env) { t.env = env }

// MetadataBytes implements tier.Policy.
func (t *TwoQ) MetadataBytes() int64 { return t.lists.metadataBytes() }

// Stats returns a copy of the activity counters.
func (t *TwoQ) Stats() TwoQStats { return t.stats }

// Tick implements tier.Policy; 2Q acts purely per request.
func (t *TwoQ) Tick() {}

// OnSamples implements tier.Policy.
func (t *TwoQ) OnSamples(batch []tier.Sample) {
	for _, s := range batch {
		t.stats.Samples++
		t.env.TouchMeta(int64(s.Page) * 9)
		t.request(int32(s.Page))
	}
}

func (t *TwoQ) request(x int32) {
	l := t.lists
	switch l.on(x) {
	case twoqAm:
		t.stats.Hits++
		l.moveFront(twoqAm, x)
	case twoqA1in:
		// 2Q leaves A1in pages where they are: only a re-reference after
		// eviction proves reuse.
		t.stats.Hits++
	case twoqA1out:
		// Reuse after eviction: graduate to Am.
		t.reclaim()
		l.remove(x)
		l.pushFront(twoqAm, x)
		if t.env.Promote(mem.PageID(x)) == nil {
			t.stats.Promoted++
		}
	default:
		// Cold miss: straight into the cache via A1in — the direct
		// promotion on first sample that §6.1 finds too aggressive.
		t.reclaim()
		l.pushFront(twoqA1in, x)
		if t.env.Promote(mem.PageID(x)) == nil {
			t.stats.Promoted++
		}
	}
}

// reclaim frees one slot when the cache is full, per the 2Q paper's
// reclaimfor(): overflow A1in first (remembering victims in A1out), else
// evict Am's LRU.
func (t *TwoQ) reclaim() {
	l := t.lists
	if l.size(twoqA1in)+l.size(twoqAm) < t.c {
		return
	}
	if l.size(twoqA1in) > t.kin {
		if y := l.popBack(twoqA1in); y >= 0 {
			t.demote(y)
			l.pushFront(twoqA1out, y)
			if l.size(twoqA1out) > t.kou {
				l.popBack(twoqA1out)
			}
		}
		return
	}
	if y := l.popBack(twoqAm); y >= 0 {
		t.demote(y)
	}
}

func (t *TwoQ) demote(y int32) {
	if t.env.Demote(mem.PageID(y)) == nil {
		t.stats.Demoted++
	}
}

// RecencyFree implements tier.RecencyFree: TwoQ tracks recency in its own
// queues and never consults Env.LastAccess.
func (t *TwoQ) RecencyFree() {}
