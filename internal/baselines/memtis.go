package baselines

import (
	"math/bits"

	"repro/internal/mem"
	"repro/internal/tier"
)

// MemtisConfig parameterizes the Memtis baseline (Lee et al., SOSP'23),
// the state-of-the-art frequency-based system the paper compares against in
// depth (§6.3).
type MemtisConfig struct {
	// NumPages is the total page space; Memtis keeps 16 B of metadata for
	// every page in the system (§2.3.3), so its overhead scales with total
	// memory rather than fast-tier size.
	NumPages int
	// FastPages is the fast-tier capacity, used for threshold tuning.
	FastPages int
	// CoolSamples is the EMA cooling period in samples (§2.3.2; the paper
	// studies 2M-25M real samples — scaled to simulator rates).
	CoolSamples int
	// PromoWatermark / DemoteWatermark mirror the kernel watermarks.
	PromoWatermark  float64
	DemoteWatermark float64
}

// DefaultMemtisConfig returns the baseline configuration for a memory
// layout, with a cooling period matching its real 2M-sample default scaled
// by the same factor as HybridTier's trackers.
func DefaultMemtisConfig(numPages, fastPages int) MemtisConfig {
	return MemtisConfig{
		NumPages:        numPages,
		FastPages:       fastPages,
		CoolSamples:     60_000,
		PromoWatermark:  0.02,
		DemoteWatermark: 0.08,
	}
}

// perPageMetaBytes is Memtis' per-page metadata footprint: 16 B attached to
// each struct page (§2.3.3).
const perPageMetaBytes = 16

// Memtis tracks an exact access counter per page, builds a hotness
// histogram over log2 count buckets, and promotes pages whose count exceeds
// a threshold chosen so the hot set just fits the fast tier. Freshness
// comes from halving every counter each cooling period — the lagging-EMA
// behaviour §2.3.2 analyzes.
type Memtis struct {
	cfg        MemtisConfig
	env        tier.Env
	counts     []uint16
	hist       [17]int64 // hist[b] = pages whose count has bit-length b
	thresh     uint16
	since      int
	scanCursor mem.PageID
	lastScanNs int64
	stats      MemtisStats
}

// MemtisStats counts baseline activity.
type MemtisStats struct {
	Samples  uint64
	Promoted uint64
	Demoted  uint64
	Coolings uint64
}

var _ tier.Policy = (*Memtis)(nil)

// NewMemtis constructs the baseline.
func NewMemtis(cfg MemtisConfig) *Memtis {
	m := &Memtis{
		cfg:    cfg,
		counts: make([]uint16, cfg.NumPages),
		thresh: 4,
	}
	m.hist[0] = int64(cfg.NumPages)
	return m
}

// Name implements tier.Policy.
func (m *Memtis) Name() string { return "Memtis" }

// Attach implements tier.Policy.
func (m *Memtis) Attach(env tier.Env) { m.env = env }

// MetadataBytes implements tier.Policy: 16 B per page of total memory.
func (m *Memtis) MetadataBytes() int64 {
	return int64(m.cfg.NumPages) * perPageMetaBytes
}

// Stats returns a copy of the activity counters.
func (m *Memtis) Stats() MemtisStats { return m.stats }

// Threshold returns the current hot threshold (test hook).
func (m *Memtis) Threshold() uint16 { return m.thresh }

// Count returns the exact counter for p (test hook and the Fig. 3b cooling
// accuracy experiment, which inspects the histogram Memtis builds).
func (m *Memtis) Count(p mem.PageID) uint16 { return m.counts[p] }

// Hist returns a copy of the log2 hotness histogram.
func (m *Memtis) Hist() [17]int64 { return m.hist }

// OnSamples implements tier.Policy: Algorithm 1 with an exact table. Each
// sample costs a page-table walk plus a 16 B metadata update — the poor
// locality §3.3 identifies (4 entries per cache line vs the CBF's 32+
// pages per line).
func (m *Memtis) OnSamples(batch []tier.Sample) {
	for _, s := range batch {
		m.stats.Samples++
		p := s.Page

		// Per-sample metadata references, following htmm_core.c's update
		// path: the PTE line reached by the page-table walk (upper levels
		// are shared and cache-resident), the 16 B struct-page hotness
		// metadata, the per-page LRU/generation bookkeeping, and the
		// histogram bucket (small and shared, so effectively cached).
		metaEnd := int64(m.cfg.NumPages) * perPageMetaBytes
		m.env.TouchMeta(metaEnd + int64(p)*8)        // PTE entry
		m.env.TouchMeta(int64(p) * perPageMetaBytes) // hotness metadata
		m.env.TouchMeta(metaEnd*2 + int64(p)*16)     // LRU/gen bookkeeping
		m.env.TouchMeta(metaEnd * 3)                 // histogram head

		old := m.counts[p]
		if old < 1<<15 {
			m.counts[p] = old + 1
			ob, nb := bits.Len16(old), bits.Len16(old+1)
			if ob != nb {
				m.hist[ob]--
				m.hist[nb]++
			}
		}

		if s.Tier == mem.Slow && m.counts[p] >= m.thresh {
			if err := m.env.Promote(p); err != nil {
				m.demoteToWatermark()
				if m.env.Promote(p) == nil {
					m.stats.Promoted++
				}
			} else {
				m.stats.Promoted++
			}
		}

		m.since++
		if m.since >= m.cfg.CoolSamples {
			m.cool()
		}
	}
}

// cool halves every page counter — a full sweep of the per-page metadata,
// which is exactly the "additional background activity" overhead the paper
// observes growing with memory size (§6.1).
func (m *Memtis) cool() {
	m.since = 0
	m.stats.Coolings++
	for i := range m.counts {
		m.counts[i] >>= 1
	}
	var nh [17]int64
	for b, n := range m.hist {
		if b == 0 {
			nh[0] += n
		} else {
			nh[b-1] += n // halving a count drops its bit length by one
		}
	}
	m.hist = nh
	m.retune()
	// Sweep cost over the whole metadata region.
	m.env.Charge(float64(m.cfg.NumPages) * perPageMetaBytes / 64)
}

// retune picks the smallest power-of-two threshold whose hot set fits the
// fast tier, Memtis' histogram-driven threshold (§2.3.1).
func (m *Memtis) retune() {
	budget := int64(m.cfg.FastPages)
	var cum int64
	bucket := len(m.hist) - 1
	for b := len(m.hist) - 1; b >= 1; b-- {
		cum += m.hist[b]
		if cum > budget {
			break
		}
		bucket = b
	}
	t := uint16(1) << (bucket - 1)
	if t < 2 {
		t = 2
	}
	m.thresh = t
}

// Tick implements tier.Policy: watermark-driven demotion plus a periodic
// threshold refresh from the live histogram.
func (m *Memtis) Tick() {
	m.retune()
	mm := m.env.Mem()
	if float64(mm.FastFree()) < m.cfg.PromoWatermark*float64(mm.FastCap()) {
		m.demoteToWatermark()
	}
}

func (m *Memtis) demoteToWatermark() {
	now := m.env.Now()
	if now-m.lastScanNs < scanMinIntervalNs {
		return
	}
	m.lastScanNs = now
	mm := m.env.Mem()
	target := int(m.cfg.DemoteWatermark * float64(mm.FastCap()))
	if target < 1 {
		target = 1
	}
	visited := 0
	last := m.scanCursor
	mm.ScanFastFrom(m.scanCursor, func(p mem.PageID) bool {
		visited++
		last = p
		if m.counts[p] < m.thresh {
			if m.env.Demote(p) == nil {
				m.stats.Demoted++
			}
		}
		return mm.FastFree() < target
	})
	m.scanCursor = last + 1
	m.env.Charge(float64(visited) * 25)
}

// RecencyFree implements tier.RecencyFree: Memtis is purely sample-driven
// and never consults Env.LastAccess.
func (m *Memtis) RecencyFree() {}
