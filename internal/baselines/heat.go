package baselines

import (
	"math/bits"

	"repro/internal/mem"
	"repro/internal/tier"
)

// HeatConfig parameterizes the Heat policy, a port of memtierd's
// heat-bucket placement (cri-resource-manager's policy "heat"): every
// tracker report heats a page one step, heat decays by halving on a
// rolling schedule, and pages are classed into log2 heat buckets; the
// hottest buckets that fit live in the fast tier. Against a scanning
// tracker, heat approximates "active windows out of the recent past" —
// coarser than Memtis' exact counters, with metadata an eighth the size.
type HeatConfig struct {
	// NumPages is the total page space (1 B of heat each).
	NumPages int
	// FastPages is the fast-tier capacity, used for threshold tuning.
	FastPages int
	// CoolTicks is the number of policy ticks a full cooling cycle is
	// spread over: each tick halves the heat of 1/CoolTicks of the page
	// space, so cooling cost is amortized instead of arriving as the
	// periodic full-sweep spike Memtis pays.
	CoolTicks int
	// FreeWatermark is the fast-tier free fraction under which demotion
	// sweeps run.
	FreeWatermark float64
	// Label overrides the policy's display name ("Heat" when empty), so a
	// registration bound to a specific tracker can report that binding in
	// results ("Heat-Idle", "Heat-Dirty").
	Label string
}

// DefaultHeatConfig returns the memtierd-proportioned setup.
func DefaultHeatConfig(numPages, fastPages int) HeatConfig {
	return HeatConfig{
		NumPages:      numPages,
		FastPages:     fastPages,
		CoolTicks:     32, // one full cooling cycle ≈ 16 idlepage scans
		FreeWatermark: 0.02,
	}
}

// Heat keeps one saturating byte of heat per page, bucketed by bit
// length into a 9-bucket histogram that retunes the hot threshold so the
// hot set just fits the fast tier.
type Heat struct {
	cfg        HeatConfig
	env        tier.Env
	heat       []uint8
	hist       [9]int64 // hist[b] = pages whose heat has bit-length b
	thresh     uint8
	coolCursor int
	scanCursor mem.PageID
	lastScanNs int64
	stats      HeatStats
}

// HeatStats counts policy activity.
type HeatStats struct {
	Samples  uint64
	Promoted uint64
	Demoted  uint64
	Cooled   uint64 // pages cooled (not cycles: cooling is incremental)
}

var _ tier.Policy = (*Heat)(nil)

// NewHeat constructs the policy.
func NewHeat(cfg HeatConfig) *Heat {
	h := &Heat{cfg: cfg, heat: make([]uint8, cfg.NumPages), thresh: 2}
	h.hist[0] = int64(cfg.NumPages)
	return h
}

// Name implements tier.Policy.
func (h *Heat) Name() string {
	if h.cfg.Label != "" {
		return h.cfg.Label
	}
	return "Heat"
}

// Attach implements tier.Policy.
func (h *Heat) Attach(env tier.Env) { h.env = env }

// MetadataBytes implements tier.Policy: one heat byte per page.
func (h *Heat) MetadataBytes() int64 { return int64(h.cfg.NumPages) }

// Stats returns a copy of the activity counters.
func (h *Heat) Stats() HeatStats { return h.stats }

// Threshold returns the current hot threshold (test hook).
func (h *Heat) Threshold() uint8 { return h.thresh }

// OnSamples implements tier.Policy: heat the page and promote it once it
// crosses the hot threshold.
func (h *Heat) OnSamples(batch []tier.Sample) {
	for _, s := range batch {
		h.stats.Samples++
		p := s.Page
		h.env.TouchMeta(int64(p))
		old := h.heat[p]
		if old < 255 {
			h.heat[p] = old + 1
			ob, nb := bits.Len8(old), bits.Len8(old+1)
			if ob != nb {
				h.hist[ob]--
				h.hist[nb]++
			}
		}
		if s.Tier == mem.Slow && h.heat[p] >= h.thresh {
			if err := h.env.Promote(p); err != nil {
				h.demoteCold()
				if h.env.Promote(p) == nil {
					h.stats.Promoted++
				}
			} else {
				h.stats.Promoted++
			}
		}
	}
}

// Tick implements tier.Policy: cool the next chunk of the page space,
// retune the threshold from the histogram, and demote under the free
// watermark.
func (h *Heat) Tick() {
	h.coolChunk()
	h.retune()
	mm := h.env.Mem()
	if float64(mm.FastFree()) < h.cfg.FreeWatermark*float64(mm.FastCap()) {
		h.demoteCold()
	}
}

// coolChunk halves the heat of the next 1/CoolTicks slice of pages.
func (h *Heat) coolChunk() {
	n := h.cfg.NumPages/h.cfg.CoolTicks + 1
	for i := 0; i < n; i++ {
		p := h.coolCursor
		if h.coolCursor++; h.coolCursor >= h.cfg.NumPages {
			h.coolCursor = 0
		}
		old := h.heat[p]
		if old == 0 {
			continue
		}
		h.heat[p] = old >> 1
		h.hist[bits.Len8(old)]--
		h.hist[bits.Len8(old>>1)]++
		h.stats.Cooled++
	}
	h.env.Charge(float64(n) / 64)
}

// retune picks the smallest power-of-two threshold whose hot set fits
// the fast tier (the same histogram walk Memtis uses, over byte heat).
func (h *Heat) retune() {
	budget := int64(h.cfg.FastPages)
	var cum int64
	bucket := len(h.hist) - 1
	for b := len(h.hist) - 1; b >= 1; b-- {
		cum += h.hist[b]
		if cum > budget {
			break
		}
		bucket = b
	}
	t := uint8(1) << (bucket - 1)
	if t < 2 {
		t = 2
	}
	h.thresh = t
}

// demoteCold walks the fast tier from the demotion cursor, demoting
// below-threshold pages until the free watermark is met.
func (h *Heat) demoteCold() {
	now := h.env.Now()
	if now-h.lastScanNs < scanMinIntervalNs {
		return
	}
	h.lastScanNs = now
	mm := h.env.Mem()
	target := int(h.cfg.FreeWatermark*float64(mm.FastCap())) + 1
	visited := 0
	last := h.scanCursor
	mm.ScanFastFrom(h.scanCursor, func(p mem.PageID) bool {
		visited++
		last = p
		if h.heat[p] < h.thresh {
			if h.env.Demote(p) == nil {
				h.stats.Demoted++
			}
		}
		return mm.FastFree() < target && visited < h.cfg.FastPages
	})
	h.scanCursor = last + 1
	h.env.Charge(float64(visited) * 25)
}

// RecencyFree implements tier.RecencyFree: Heat is purely sample-driven
// and never consults Env.LastAccess.
func (h *Heat) RecencyFree() {}
