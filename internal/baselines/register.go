package baselines

import (
	"repro/internal/mem"
	"repro/internal/registry"
	"repro/internal/tier"
	"repro/internal/tracker"
)

// init self-registers every baseline system evaluated in §5.2 with the
// first-touch allocation mode the paper's methodology prescribes for it:
// the kernel-style systems place new pages fast-first, the cache-style
// replacement policies (ARC, TwoQ, LRU) start with everything slow. The
// memtierd-lineage policies (Age, Heat) additionally declare the tracker
// they are designed against; "Name@tracker" qualifiers override it.
func init() {
	registry.Policies.MustRegister(registry.PolicyEntry{
		Name: "Memtis", Doc: "sampling-based kernel tiering with EMA hotness (HPCA'23 baseline)",
		New: func(numPages, fastPages int, _ bool) (tier.Policy, mem.AllocMode, error) {
			return NewMemtis(DefaultMemtisConfig(numPages, fastPages)), mem.AllocFastFirst, nil
		},
	})
	registry.Policies.MustRegister(registry.PolicyEntry{
		Name: "AutoNUMA", Doc: "Linux hint-fault promotion with MGLRU-style demotion",
		New: func(numPages, fastPages int, _ bool) (tier.Policy, mem.AllocMode, error) {
			return NewAutoNUMA(DefaultAutoNUMAConfig(numPages)), mem.AllocFastFirst, nil
		},
	})
	registry.Policies.MustRegister(registry.PolicyEntry{
		Name: "TPP", Doc: "Meta's transparent page placement (fault-driven NUMA balancing)",
		New: func(numPages, fastPages int, _ bool) (tier.Policy, mem.AllocMode, error) {
			return NewTPP(DefaultTPPConfig(numPages)), mem.AllocFastFirst, nil
		},
	})
	registry.Policies.MustRegister(registry.PolicyEntry{
		Name: "ARC", Doc: "adaptive replacement cache treating the fast tier as a cache",
		New: func(numPages, fastPages int, _ bool) (tier.Policy, mem.AllocMode, error) {
			return NewARC(numPages, fastPages), mem.AllocSlow, nil
		},
	})
	registry.Policies.MustRegister(registry.PolicyEntry{
		Name: "TwoQ", Doc: "2Q replacement treating the fast tier as a cache",
		New: func(numPages, fastPages int, _ bool) (tier.Policy, mem.AllocMode, error) {
			return NewTwoQ(numPages, fastPages), mem.AllocSlow, nil
		},
	})
	registry.Policies.MustRegister(registry.PolicyEntry{
		Name: "LRU", Doc: "strict least-recently-used replacement",
		New: func(numPages, fastPages int, _ bool) (tier.Policy, mem.AllocMode, error) {
			return NewLRU(numPages, fastPages), mem.AllocSlow, nil
		},
	})
	registry.Policies.MustRegister(registry.PolicyEntry{
		Name: "Age-Idle", Doc: "memtierd-style age policy over idle-page bitmap scans",
		Tracker: tracker.KindIdlepage,
		New: func(numPages, fastPages int, _ bool) (tier.Policy, mem.AllocMode, error) {
			cfg := DefaultAgeConfig(numPages, fastPages)
			cfg.Label = "Age-Idle"
			return NewAge(cfg), mem.AllocFastFirst, nil
		},
	})
	registry.Policies.MustRegister(registry.PolicyEntry{
		Name: "Heat-Idle", Doc: "memtierd-style heat buckets over idle-page bitmap scans",
		Tracker: tracker.KindIdlepage,
		New: func(numPages, fastPages int, _ bool) (tier.Policy, mem.AllocMode, error) {
			cfg := DefaultHeatConfig(numPages, fastPages)
			cfg.Label = "Heat-Idle"
			return NewHeat(cfg), mem.AllocFastFirst, nil
		},
	})
	registry.Policies.MustRegister(registry.PolicyEntry{
		Name: "Heat-Dirty", Doc: "memtierd-style heat buckets over soft-dirty write tracking",
		Tracker: tracker.KindSoftDirty,
		New: func(numPages, fastPages int, _ bool) (tier.Policy, mem.AllocMode, error) {
			cfg := DefaultHeatConfig(numPages, fastPages)
			cfg.Label = "Heat-Dirty"
			return NewHeat(cfg), mem.AllocFastFirst, nil
		},
	})
	registry.Policies.MustRegister(registry.PolicyEntry{
		Name: "FirstTouch", Doc: "static placement: pages stay where first allocated",
		New: func(int, int, bool) (tier.Policy, mem.AllocMode, error) {
			return NewStatic("FirstTouch"), mem.AllocFastFirst, nil
		},
	})
	registry.Policies.MustRegister(registry.PolicyEntry{
		Name: "AllFast", Doc: "upper bound: every page in the fast tier",
		New: func(int, int, bool) (tier.Policy, mem.AllocMode, error) {
			return NewStatic("AllFast"), mem.AllocFast, nil
		},
	})
}
