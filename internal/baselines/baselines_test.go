package baselines

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/tier"
)

func newEnv(numPages, fastPages int) (*mem.Memory, *tier.NopEnv) {
	m := mem.MustNew(mem.Config{
		NumPages: numPages, FastPages: fastPages,
		PageBytes: mem.RegularPageBytes, Alloc: mem.AllocSlow,
	})
	return m, &tier.NopEnv{M: m, Accesses: map[mem.PageID]int64{}}
}

func samples(ps ...mem.PageID) []tier.Sample {
	out := make([]tier.Sample, len(ps))
	for i, p := range ps {
		out[i] = tier.Sample{Page: p, Tier: mem.Slow}
	}
	return out
}

// --- pageLists ---

func TestPageListsBasics(t *testing.T) {
	l := newPageLists(10, 2)
	l.pushFront(1, 3)
	l.pushFront(1, 4)
	l.pushFront(2, 5)
	if l.size(1) != 2 || l.size(2) != 1 {
		t.Fatalf("sizes: %d %d", l.size(1), l.size(2))
	}
	if l.on(3) != 1 || l.on(5) != 2 || l.on(7) != 0 {
		t.Fatal("membership wrong")
	}
	if l.back(1) != 3 {
		t.Fatalf("back = %d, want 3 (FIFO order)", l.back(1))
	}
	l.moveFront(1, 3)
	if l.back(1) != 4 {
		t.Fatal("moveFront did not rotate")
	}
	if got := l.popBack(1); got != 4 {
		t.Fatalf("popBack = %d, want 4", got)
	}
	l.remove(3)
	if l.size(1) != 0 || l.on(3) != 0 {
		t.Fatal("remove failed")
	}
	if l.popBack(1) != -1 {
		t.Fatal("popBack on empty must return -1")
	}
	l.remove(7) // not on a list: no-op
}

func TestPageListsDoublePushPanics(t *testing.T) {
	l := newPageLists(4, 1)
	l.pushFront(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("double push must panic")
		}
	}()
	l.pushFront(1, 0)
}

// Property: after arbitrary operations, sizes equal actual chain lengths.
func TestPageListsConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		l := newPageLists(32, 3)
		for _, op := range ops {
			p := int32(op % 32)
			list := uint8(op%3) + 1
			switch (op / 32) % 3 {
			case 0:
				if l.on(p) == 0 {
					l.pushFront(list, p)
				} else {
					l.moveFront(list, p)
				}
			case 1:
				l.remove(p)
			case 2:
				l.popBack(list)
			}
		}
		for id := uint8(1); id <= 3; id++ {
			n := 0
			for p := l.head[id]; p >= 0; p = l.next[p] {
				n++
				if n > 32 {
					return false // cycle
				}
			}
			if n != l.size(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- Memtis ---

func TestMemtisPromotesAtThreshold(t *testing.T) {
	m, env := newEnv(128, 8)
	mt := NewMemtis(MemtisConfig{NumPages: 128, FastPages: 8, CoolSamples: 1 << 20,
		PromoWatermark: 0.02, DemoteWatermark: 0.08})
	mt.Attach(env)
	m.Touch(5)
	th := int(mt.Threshold())
	for i := 0; i < th-1; i++ {
		mt.OnSamples(samples(5))
	}
	if m.TierOf(5) != mem.Slow {
		t.Fatal("promoted below threshold")
	}
	mt.OnSamples(samples(5))
	if m.TierOf(5) != mem.Fast {
		t.Fatal("not promoted at threshold")
	}
}

func TestMemtisCooling(t *testing.T) {
	m, env := newEnv(128, 8)
	mt := NewMemtis(MemtisConfig{NumPages: 128, FastPages: 8, CoolSamples: 10,
		PromoWatermark: 0.02, DemoteWatermark: 0.08})
	mt.Attach(env)
	m.Touch(3)
	for i := 0; i < 9; i++ {
		mt.OnSamples(samples(3))
	}
	if mt.Count(3) != 9 {
		t.Fatalf("count = %d, want 9", mt.Count(3))
	}
	mt.OnSamples(samples(3)) // 10th sample triggers cooling after counting
	if got := mt.Count(3); got != 5 {
		t.Fatalf("cooled count = %d, want 5 (10>>1)", got)
	}
	if mt.Stats().Coolings != 1 {
		t.Error("cooling not counted")
	}
	// Histogram mass must be conserved.
	var sum int64
	for _, n := range mt.Hist() {
		sum += n
	}
	if sum != 128 {
		t.Errorf("histogram mass = %d, want NumPages", sum)
	}
}

func TestMemtisDemotesOnWatermark(t *testing.T) {
	m, env := newEnv(128, 4)
	mt := NewMemtis(MemtisConfig{NumPages: 128, FastPages: 4, CoolSamples: 1 << 20,
		PromoWatermark: 0.5, DemoteWatermark: 0.75})
	mt.Attach(env)
	for p := mem.PageID(0); p < 4; p++ {
		m.Touch(p)
		m.Promote(p)
	}
	env.Clock = 10_000_000 // past the scan rate limiter
	mt.Tick()
	if m.FastFree() < 3 {
		t.Errorf("FastFree = %d after watermark demotion, want ≥ 3", m.FastFree())
	}
}

func TestMemtisMetadataScalesWithTotal(t *testing.T) {
	a := NewMemtis(MemtisConfig{NumPages: 1000, FastPages: 10})
	b := NewMemtis(MemtisConfig{NumPages: 2000, FastPages: 10})
	if b.MetadataBytes() != 2*a.MetadataBytes() {
		t.Error("Memtis metadata must scale with total pages (§2.3.3)")
	}
	if a.MetadataBytes() != 16_000 {
		t.Errorf("metadata = %d, want 16 B/page", a.MetadataBytes())
	}
}

// --- AutoNUMA ---

func TestAutoNUMAFaultPromotion(t *testing.T) {
	m, env := newEnv(1024, 16)
	cfg := DefaultAutoNUMAConfig(1024)
	cfg.ScanWindowPages = 256
	an := NewAutoNUMA(cfg)
	an.Attach(env)

	env.Clock = 1000
	an.Tick() // unmaps pages [0, 256)
	if !an.WantsFault(10) {
		t.Fatal("page 10 should be unmapped after the scan")
	}
	if an.WantsFault(300) {
		t.Fatal("page 300 is outside the scanned window")
	}
	m.Touch(10)
	env.Clock = 2000 // fault 1µs after unmap: well under the hint threshold
	an.OnFault(10, mem.Slow)
	if m.TierOf(10) != mem.Fast {
		t.Error("recent hint fault on a slow page must promote — even a cold page")
	}
	if an.WantsFault(10) {
		t.Error("fault must clear the unmap bit")
	}
}

func TestAutoNUMASlowFaultOnly(t *testing.T) {
	m, env := newEnv(1024, 16)
	cfg := DefaultAutoNUMAConfig(1024)
	cfg.ScanWindowPages = 256
	an := NewAutoNUMA(cfg)
	an.Attach(env)
	an.Tick()
	m.Touch(20)
	m.Promote(20)
	an.OnFault(20, mem.Fast)
	// Fast pages stay: nothing to promote.
	if m.Stats().Promotions != 1 { // only the setup promotion
		t.Error("fast-tier fault must not migrate")
	}
}

func TestAutoNUMAStaleFaultNotPromoted(t *testing.T) {
	m, env := newEnv(1024, 16)
	cfg := DefaultAutoNUMAConfig(1024)
	cfg.ScanWindowPages = 256
	cfg.HintThresholdNs = 1000
	an := NewAutoNUMA(cfg)
	an.Attach(env)
	env.Clock = 0
	an.Tick()
	m.Touch(10)
	env.Clock = 50_000 // fault long after unmap: page is not hot
	an.OnFault(10, mem.Slow)
	if m.TierOf(10) != mem.Slow {
		t.Error("stale hint fault must not promote")
	}
}

func TestAutoNUMADemotionByAge(t *testing.T) {
	m, env := newEnv(1024, 4)
	cfg := DefaultAutoNUMAConfig(1024)
	cfg.PromoWatermark = 0.5
	cfg.DemoteWatermark = 0.75
	cfg.AgeNs = 1000
	an := NewAutoNUMA(cfg)
	an.Attach(env)
	for p := mem.PageID(0); p < 4; p++ {
		m.Touch(p)
		m.Promote(p)
		env.Accesses[p] = 100 // last touched long ago (clock far ahead)
	}
	env.Accesses[0] = 99_999_900 // page 0 accessed within AgeNs of now
	env.Clock = 100_000_000
	an.Tick()
	if m.TierOf(0) != mem.Fast {
		t.Error("recently used page should survive demotion")
	}
	if m.FastFree() < 3 {
		t.Errorf("FastFree = %d, want ≥ 3", m.FastFree())
	}
}

// --- TPP ---

func TestTPPSecondFaultPromotes(t *testing.T) {
	m, env := newEnv(512, 8)
	cfg := DefaultTPPConfig(512)
	tp := NewTPP(cfg)
	tp.Attach(env)
	m.Touch(7)
	if !tp.WantsFault(7) {
		t.Fatal("all pages start armed")
	}
	env.Clock = 1000
	tp.OnFault(7, mem.Slow)
	if m.TierOf(7) != mem.Slow {
		t.Fatal("first fault must not promote (inactive page)")
	}
	tp.Tick() // re-arm
	if !tp.WantsFault(7) {
		t.Fatal("tick must re-arm")
	}
	env.Clock = 2000 // within the active window
	tp.OnFault(7, mem.Slow)
	if m.TierOf(7) != mem.Fast {
		t.Fatal("second fault within the window must promote")
	}
}

func TestTPPStaleSecondFault(t *testing.T) {
	m, env := newEnv(512, 8)
	cfg := DefaultTPPConfig(512)
	cfg.ActiveWindowNs = 1000
	tp := NewTPP(cfg)
	tp.Attach(env)
	m.Touch(7)
	env.Clock = 1000
	tp.OnFault(7, mem.Slow)
	tp.Tick()
	env.Clock = 100_000 // far outside the window
	tp.OnFault(7, mem.Slow)
	if m.TierOf(7) != mem.Slow {
		t.Error("faults far apart must not promote")
	}
}

// --- ARC ---

func TestARCCapacityRespected(t *testing.T) {
	m, env := newEnv(256, 8)
	a := NewARC(256, 8)
	a.Attach(env)
	for p := mem.PageID(0); p < 256; p++ {
		m.Touch(p)
	}
	for round := 0; round < 3; round++ {
		for p := mem.PageID(0); p < 100; p++ {
			a.OnSamples(samples(p))
			if used := m.FastUsed(); used > 8 {
				t.Fatalf("ARC exceeded capacity: %d > 8", used)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestARCFrequencyWins(t *testing.T) {
	// Pages accessed twice should survive a one-time scan (T2 protection).
	m, env := newEnv(256, 4)
	a := NewARC(256, 4)
	a.Attach(env)
	for p := mem.PageID(0); p < 256; p++ {
		m.Touch(p)
	}
	// Make pages 0 and 1 frequent.
	for i := 0; i < 4; i++ {
		a.OnSamples(samples(0, 1))
	}
	// Scan through many one-time pages.
	for p := mem.PageID(10); p < 60; p++ {
		a.OnSamples(samples(p))
	}
	// Touch the frequent pages again — they should still be resident.
	before := m.Stats().Promotions
	a.OnSamples(samples(0, 1))
	if m.Stats().Promotions != before {
		t.Error("frequent pages were evicted by a scan; ARC should protect them in T2")
	}
}

func TestARCGhostHitAdapts(t *testing.T) {
	m, env := newEnv(256, 4)
	a := NewARC(256, 4)
	a.Attach(env)
	for p := mem.PageID(0); p < 256; p++ {
		m.Touch(p)
	}
	// Populate T2 so REPLACE (which feeds the B1 ghost) can run, then
	// stream misses until T1 evictions land in B1.
	a.OnSamples(samples(0, 1))
	a.OnSamples(samples(0, 1))
	for p := mem.PageID(10); p < 60; p++ {
		a.OnSamples(samples(p))
	}
	if a.lists.size(arcB1) == 0 {
		t.Fatal("setup: B1 ghost list should be populated after the miss stream")
	}
	p0 := a.Target()
	// Hit a ghost: target must grow.
	grew := false
	for p := mem.PageID(10); p < 60; p++ {
		if a.lists.on(int32(p)) == arcB1 {
			a.OnSamples(samples(p))
			if a.Target() > p0 {
				grew = true
			}
			break
		}
	}
	if !grew {
		t.Error("B1 ghost hit must grow the T1 target")
	}
}

// --- TwoQ ---

func TestTwoQLifecycle(t *testing.T) {
	m, env := newEnv(256, 8)
	q := NewTwoQ(256, 8)
	q.Attach(env)
	for p := mem.PageID(0); p < 256; p++ {
		m.Touch(p)
	}
	// Cold miss: into A1in and fast tier.
	q.OnSamples(samples(1))
	if q.lists.on(1) != twoqA1in || m.TierOf(1) != mem.Fast {
		t.Fatal("cold miss must insert into A1in and promote")
	}
	// Overflow A1in (Kin = 2): page 1 falls to the A1out ghost and is
	// demoted.
	for p := mem.PageID(2); p < 12; p++ {
		q.OnSamples(samples(p))
	}
	if q.lists.on(1) != twoqA1out {
		t.Fatalf("page 1 should be on A1out, is on %d", q.lists.on(1))
	}
	if m.TierOf(1) != mem.Slow {
		t.Fatal("A1out pages must be demoted")
	}
	// Re-reference from A1out: graduates to Am and promotes.
	q.OnSamples(samples(1))
	if q.lists.on(1) != twoqAm || m.TierOf(1) != mem.Fast {
		t.Fatal("A1out hit must graduate to Am and promote")
	}
}

func TestTwoQCapacity(t *testing.T) {
	m, env := newEnv(512, 8)
	q := NewTwoQ(512, 8)
	q.Attach(env)
	for p := mem.PageID(0); p < 512; p++ {
		m.Touch(p)
	}
	for round := 0; round < 2; round++ {
		for p := mem.PageID(0); p < 300; p++ {
			q.OnSamples(samples(p))
			if m.FastUsed() > 8 {
				t.Fatalf("TwoQ exceeded capacity: %d", m.FastUsed())
			}
		}
	}
}

// --- LRU ---

func TestLRUEvictionOrder(t *testing.T) {
	m, env := newEnv(64, 2)
	l := NewLRU(64, 2)
	l.Attach(env)
	for p := mem.PageID(0); p < 64; p++ {
		m.Touch(p)
	}
	l.OnSamples(samples(1, 2)) // fast = {1, 2}
	l.OnSamples(samples(1))    // refresh 1
	l.OnSamples(samples(3))    // evicts 2
	if m.TierOf(2) != mem.Slow || m.TierOf(1) != mem.Fast || m.TierOf(3) != mem.Fast {
		t.Errorf("LRU state wrong: t1=%v t2=%v t3=%v", m.TierOf(1), m.TierOf(2), m.TierOf(3))
	}
	if l.Stats().Hits != 1 {
		t.Errorf("hits = %d, want 1", l.Stats().Hits)
	}
}

// --- Static ---

func TestStaticNoops(t *testing.T) {
	m, env := newEnv(64, 4)
	s := NewStatic("FirstTouch")
	s.Attach(env)
	m.Touch(1)
	s.OnSamples(samples(1))
	s.Tick()
	if m.Stats().Promotions != 0 || m.Stats().Demotions != 0 {
		t.Error("static policy must not migrate")
	}
	if s.Name() != "FirstTouch" || s.MetadataBytes() != 0 {
		t.Error("static accessors wrong")
	}
}

func TestPoliciesImplementInterfaces(t *testing.T) {
	var _ tier.Policy = NewMemtis(MemtisConfig{NumPages: 10, FastPages: 2})
	var _ tier.FaultDriven = NewAutoNUMA(DefaultAutoNUMAConfig(64))
	var _ tier.FaultDriven = NewTPP(DefaultTPPConfig(64))
	var _ tier.Policy = NewARC(10, 2)
	var _ tier.Policy = NewTwoQ(10, 2)
	var _ tier.Policy = NewLRU(10, 2)
	var _ tier.Policy = NewStatic("x")
}
