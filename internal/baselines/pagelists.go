// Package baselines implements the six comparison tiering systems from the
// paper's evaluation (§5.2): Memtis (frequency histogram + cooling),
// AutoNUMA (hint-fault recency), TPP (fault-driven CXL promotion), ARC and
// TwoQ (caching algorithms adapted to tiering), plus an LRU policy and the
// static placements used as bounds.
package baselines

// scanMinIntervalNs bounds how often watermark-demotion scans may run: a
// full fast tier with nothing demotable must not rescan on every failed
// promotion.
const scanMinIntervalNs = 1_000_000

// pageLists is a set of intrusive doubly-linked lists over a dense page-id
// space. Every page is on at most one list. All operations are O(1), which
// is what makes LRU-family policies (ARC, TwoQ, LRU) cheap enough to run
// per sample. List id 0 means "not on any list"; valid lists are 1..n.
type pageLists struct {
	next, prev []int32
	where      []uint8
	head, tail []int32
	sizes      []int
}

// newPageLists creates storage for numPages pages and numLists lists.
func newPageLists(numPages, numLists int) *pageLists {
	l := &pageLists{
		next:  make([]int32, numPages),
		prev:  make([]int32, numPages),
		where: make([]uint8, numPages),
		head:  make([]int32, numLists+1),
		tail:  make([]int32, numLists+1),
		sizes: make([]int, numLists+1),
	}
	for i := range l.head {
		l.head[i] = -1
		l.tail[i] = -1
	}
	return l
}

// on returns the list p currently belongs to (0 = none).
func (l *pageLists) on(p int32) uint8 { return l.where[p] }

// size returns the number of pages on list id.
func (l *pageLists) size(id uint8) int { return l.sizes[id] }

// pushFront inserts p (not currently on any list) at the front of list id.
func (l *pageLists) pushFront(id uint8, p int32) {
	if l.where[p] != 0 {
		panic("pagelists: pushFront of a page already on a list")
	}
	l.where[p] = id
	l.prev[p] = -1
	l.next[p] = l.head[id]
	if l.head[id] >= 0 {
		l.prev[l.head[id]] = p
	}
	l.head[id] = p
	if l.tail[id] < 0 {
		l.tail[id] = p
	}
	l.sizes[id]++
}

// remove unlinks p from whatever list it is on (no-op when on none).
func (l *pageLists) remove(p int32) {
	id := l.where[p]
	if id == 0 {
		return
	}
	if l.prev[p] >= 0 {
		l.next[l.prev[p]] = l.next[p]
	} else {
		l.head[id] = l.next[p]
	}
	if l.next[p] >= 0 {
		l.prev[l.next[p]] = l.prev[p]
	} else {
		l.tail[id] = l.prev[p]
	}
	l.where[p] = 0
	l.sizes[id]--
}

// moveFront makes p the MRU entry of list id (p may come from any list).
func (l *pageLists) moveFront(id uint8, p int32) {
	l.remove(p)
	l.pushFront(id, p)
}

// back returns the LRU entry of list id, or -1 when empty.
func (l *pageLists) back(id uint8) int32 { return l.tail[id] }

// popBack removes and returns the LRU entry of list id, or -1 when empty.
func (l *pageLists) popBack(id uint8) int32 {
	p := l.tail[id]
	if p >= 0 {
		l.remove(p)
	}
	return p
}

// metadataBytes reports the structure's memory footprint: 9 bytes per page
// (two links + list tag) plus the per-list heads.
func (l *pageLists) metadataBytes() int64 {
	return int64(len(l.next))*9 + int64(len(l.head))*8
}
