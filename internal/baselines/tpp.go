package baselines

import (
	"repro/internal/mem"
	"repro/internal/tier"
)

// TPPConfig parameterizes the TPP baseline (Maruf et al., ASPLOS'23):
// transparent page placement for CXL memory, which promotes CXL pages on
// NUMA hint faults when the page is already on the kernel's active list
// (i.e. faulted again within a short window) and demotes from the inactive
// LRU under fast-tier pressure.
type TPPConfig struct {
	// NumPages is the page-space size.
	NumPages int
	// ActiveWindowNs: a second fault within this window marks the page
	// active and triggers promotion.
	ActiveWindowNs int64
	// PromoWatermark / DemoteWatermark mirror TPP's decoupled allocation
	// and demotion watermarks.
	PromoWatermark  float64
	DemoteWatermark float64
}

// DefaultTPPConfig returns scaled defaults.
func DefaultTPPConfig(numPages int) TPPConfig {
	return TPPConfig{
		NumPages:        numPages,
		ActiveWindowNs:  60_000_000,
		PromoWatermark:  0.02,
		DemoteWatermark: 0.10,
	}
}

// rearmSlices is the number of ticks one full re-protection sweep takes.
const rearmSlices = 8

// TPP implements tier.FaultDriven. Slow-tier (CXL) pages are hint-fault
// armed in rotating slices; a page promoting requires two faults within the
// active window, TPP's active-list check. Demotion evicts the least-
// recently-used fast pages.
type TPP struct {
	cfg         TPPConfig
	env         tier.Env
	armed       []uint64
	lastFault   []int64
	rearmCursor int
	demoCursor  mem.PageID
	lastScanNs  int64
	stats       TPPStats
}

// TPPStats counts baseline activity.
type TPPStats struct {
	Faults   uint64
	Promoted uint64
	Demoted  uint64
}

var _ tier.FaultDriven = (*TPP)(nil)

// NewTPP constructs the baseline with every page armed.
func NewTPP(cfg TPPConfig) *TPP {
	t := &TPP{
		cfg:       cfg,
		armed:     make([]uint64, (cfg.NumPages+63)/64),
		lastFault: make([]int64, cfg.NumPages),
	}
	for i := range t.armed {
		t.armed[i] = ^uint64(0)
	}
	return t
}

// Name implements tier.Policy.
func (t *TPP) Name() string { return "TPP" }

// Attach implements tier.Policy.
func (t *TPP) Attach(env tier.Env) { t.env = env }

// MetadataBytes implements tier.Policy: fault stamps + arm bitmap.
func (t *TPP) MetadataBytes() int64 {
	return int64(len(t.lastFault))*8 + int64(len(t.armed))*8
}

// Stats returns a copy of the activity counters.
func (t *TPP) Stats() TPPStats { return t.stats }

// OnSamples implements tier.Policy; TPP is fault-driven.
func (t *TPP) OnSamples([]tier.Sample) {}

// WantsFault implements tier.FaultDriven: armed pages fault; only slow-tier
// faults matter but arming is per page, so check placement at fault time.
func (t *TPP) WantsFault(p mem.PageID) bool {
	return t.armed[p>>6]&(1<<(p&63)) != 0
}

// OnFault implements tier.FaultDriven.
func (t *TPP) OnFault(p mem.PageID, tr mem.Tier) {
	t.stats.Faults++
	t.armed[p>>6] &^= 1 << (p & 63)
	now := t.env.Now()
	if tr == mem.Slow {
		if prev := t.lastFault[p]; prev > 0 && now-prev < t.cfg.ActiveWindowNs {
			// Second fault within the window: the page would be on the
			// active list — promote.
			if err := t.env.Promote(p); err != nil {
				t.demoteToWatermark()
				if t.env.Promote(p) == nil {
					t.stats.Promoted++
				}
			} else {
				t.stats.Promoted++
			}
		}
	}
	t.lastFault[p] = now
}

// Tick implements tier.Policy: re-arm the fault traps for the next slice
// of the address space (the kernel scans and re-protects gradually, not all
// at once) and check the demotion watermark.
func (t *TPP) Tick() {
	slice := (len(t.armed) + rearmSlices - 1) / rearmSlices
	start := t.rearmCursor
	for i := 0; i < slice; i++ {
		t.armed[(start+i)%len(t.armed)] = ^uint64(0)
	}
	t.rearmCursor = (start + slice) % len(t.armed)
	t.env.Charge(float64(t.cfg.NumPages) * 2 / rearmSlices)
	m := t.env.Mem()
	if float64(m.FastFree()) < t.cfg.PromoWatermark*float64(m.FastCap()) {
		t.demoteToWatermark()
	}
}

// demoteToWatermark demotes the least-recently-faulted/accessed fast pages.
func (t *TPP) demoteToWatermark() {
	now := t.env.Now()
	if now-t.lastScanNs < scanMinIntervalNs {
		return
	}
	t.lastScanNs = now
	m := t.env.Mem()
	target := int(t.cfg.DemoteWatermark * float64(m.FastCap()))
	if target < 1 {
		target = 1
	}
	// LRU approximation: demote pages idle for over half the active
	// window; tighten on a second pass if needed.
	cutoff := now - t.cfg.ActiveWindowNs/2
	for pass := 0; pass < 2 && m.FastFree() < target; pass++ {
		visited := 0
		last := t.demoCursor
		m.ScanFastFrom(t.demoCursor, func(p mem.PageID) bool {
			visited++
			last = p
			if t.env.LastAccess(p) < cutoff {
				if t.env.Demote(p) == nil {
					t.stats.Demoted++
				}
			}
			return m.FastFree() < target
		})
		t.demoCursor = last + 1
		t.env.Charge(float64(visited) * 20)
		cutoff = now - t.cfg.ActiveWindowNs/8
	}
}

// FaultBitmap implements tier.FaultBitmapped with the live arming bitmap.
func (t *TPP) FaultBitmap() []uint64 { return t.armed }
