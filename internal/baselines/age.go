package baselines

import (
	"repro/internal/mem"
	"repro/internal/tier"
)

// AgeConfig parameterizes the Age policy, a port of memtierd's age-based
// placement (cri-resource-manager's policy "age"): pages recently seen by
// the tracker belong in the fast tier, pages unseen for longer than an
// idle threshold are demoted. It is the natural partner of the idlepage
// tracker — one scan sample per touched page per window is exactly the
// "was it active lately" bit the policy consumes — but runs against any
// tracker.
type AgeConfig struct {
	// NumPages is the total page space (8 B of last-seen metadata each).
	NumPages int
	// FastPages is the fast-tier capacity.
	FastPages int
	// IdleNs demotes a fast page once the tracker has not reported it for
	// this long. memtierd's IdleDurationGuess defaults to a few scan
	// periods; the default here is likewise a small multiple of the
	// tracker's 20 ms scan — short enough that a standard 1M-op run
	// (~90 virtual ms) ages out its cold allocations.
	IdleNs int64
	// FreeWatermark is the fast-tier free fraction under which sampling-
	// time promotions trigger an idle sweep to make room.
	FreeWatermark float64
	// Label overrides the policy's display name ("Age" when empty), so a
	// registration bound to a specific tracker can report that binding in
	// results ("Age-Idle").
	Label string
}

// DefaultAgeConfig returns the memtierd-proportioned setup.
func DefaultAgeConfig(numPages, fastPages int) AgeConfig {
	return AgeConfig{
		NumPages:      numPages,
		FastPages:     fastPages,
		IdleNs:        50_000_000, // 2.5 idlepage scan periods
		FreeWatermark: 0.02,
	}
}

// Age promotes pages the tracker reports as active and demotes pages it
// has stopped reporting. Unlike the frequency policies it keeps no
// counters — one timestamp per page — so a page is either fresh or idle,
// the same binary signal memtierd extracts from idle-page bitmaps.
type Age struct {
	cfg        AgeConfig
	env        tier.Env
	lastSeen   []int64 // virtual ns of the page's last tracker report
	scanCursor mem.PageID
	lastScanNs int64
	stats      AgeStats
}

// AgeStats counts policy activity.
type AgeStats struct {
	Samples  uint64
	Promoted uint64
	Demoted  uint64
	Sweeps   uint64
}

var _ tier.Policy = (*Age)(nil)

// NewAge constructs the policy.
func NewAge(cfg AgeConfig) *Age {
	return &Age{cfg: cfg, lastSeen: make([]int64, cfg.NumPages)}
}

// Name implements tier.Policy.
func (a *Age) Name() string {
	if a.cfg.Label != "" {
		return a.cfg.Label
	}
	return "Age"
}

// Attach implements tier.Policy.
func (a *Age) Attach(env tier.Env) { a.env = env }

// MetadataBytes implements tier.Policy: one 8 B timestamp per page.
func (a *Age) MetadataBytes() int64 { return int64(a.cfg.NumPages) * 8 }

// Stats returns a copy of the activity counters.
func (a *Age) Stats() AgeStats { return a.stats }

// OnSamples implements tier.Policy: refresh the page's age and promote
// anything the tracker saw on the slow tier, evicting idle pages when the
// fast tier has no room.
func (a *Age) OnSamples(batch []tier.Sample) {
	for _, s := range batch {
		a.stats.Samples++
		p := s.Page
		a.env.TouchMeta(int64(p) * 8)
		a.lastSeen[p] = s.Time
		if s.Tier != mem.Slow {
			continue
		}
		if a.env.Promote(p) == nil {
			a.stats.Promoted++
			continue
		}
		a.sweepIdle(s.Time)
		if a.env.Promote(p) == nil {
			a.stats.Promoted++
		}
	}
}

// Tick implements tier.Policy: run the idle sweep when free fast memory
// dips under the watermark, keeping headroom for the next scan's
// promotions.
func (a *Age) Tick() {
	mm := a.env.Mem()
	if float64(mm.FastFree()) < a.cfg.FreeWatermark*float64(mm.FastCap()) {
		a.sweepIdle(a.env.Now())
	}
}

// sweepIdle walks the fast tier from the demotion cursor, demoting pages
// whose last tracker report is older than IdleNs, until a watermark of
// free pages exists. Like the other kernel-style baselines the sweep is
// rate-limited and charged to the tiering thread.
func (a *Age) sweepIdle(now int64) {
	if now-a.lastScanNs < scanMinIntervalNs {
		return
	}
	a.lastScanNs = now
	a.stats.Sweeps++
	mm := a.env.Mem()
	target := int(a.cfg.FreeWatermark*float64(mm.FastCap())) + 1
	visited := 0
	last := a.scanCursor
	mm.ScanFastFrom(a.scanCursor, func(p mem.PageID) bool {
		visited++
		last = p
		if now-a.lastSeen[p] > a.cfg.IdleNs {
			if a.env.Demote(p) == nil {
				a.stats.Demoted++
			}
		}
		// Stop once headroom exists or the sweep has covered the tier.
		return mm.FastFree() < target && visited < a.cfg.FastPages
	})
	a.scanCursor = last + 1
	a.env.Charge(float64(visited) * 25)
}

// RecencyFree implements tier.RecencyFree: Age keeps its own timestamps
// from the sample stream and never consults Env.LastAccess.
func (a *Age) RecencyFree() {}
