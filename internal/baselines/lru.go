package baselines

import (
	"repro/internal/mem"
	"repro/internal/tier"
)

const lruList uint8 = 1

// LRU is the classic least-recently-used policy adapted to tiering: every
// sampled access moves the page to the MRU position; misses promote the
// page and demote the LRU victim. Included as the reference point the
// related-work section measures hybrid policies against.
type LRU struct {
	env   tier.Env
	lists *pageLists
	c     int
	stats LRUStats
}

// LRUStats counts policy activity.
type LRUStats struct {
	Samples  uint64
	Hits     uint64
	Promoted uint64
	Demoted  uint64
}

var _ tier.Policy = (*LRU)(nil)

// NewLRU constructs the policy; capacity is the fast-tier size in pages.
func NewLRU(numPages, capacity int) *LRU {
	return &LRU{lists: newPageLists(numPages, 1), c: capacity}
}

// Name implements tier.Policy.
func (l *LRU) Name() string { return "LRU" }

// Attach implements tier.Policy.
func (l *LRU) Attach(env tier.Env) { l.env = env }

// MetadataBytes implements tier.Policy.
func (l *LRU) MetadataBytes() int64 { return l.lists.metadataBytes() }

// Stats returns a copy of the activity counters.
func (l *LRU) Stats() LRUStats { return l.stats }

// Tick implements tier.Policy.
func (l *LRU) Tick() {}

// OnSamples implements tier.Policy.
func (l *LRU) OnSamples(batch []tier.Sample) {
	for _, s := range batch {
		l.stats.Samples++
		l.env.TouchMeta(int64(s.Page) * 9)
		x := int32(s.Page)
		if l.lists.on(x) == lruList {
			l.stats.Hits++
			l.lists.moveFront(lruList, x)
			continue
		}
		if l.lists.size(lruList) >= l.c {
			if y := l.lists.popBack(lruList); y >= 0 {
				if l.env.Demote(mem.PageID(y)) == nil {
					l.stats.Demoted++
				}
			}
		}
		l.lists.pushFront(lruList, x)
		if l.env.Promote(mem.PageID(x)) == nil {
			l.stats.Promoted++
		}
	}
}

// Static is a placement that never migrates: combined with
// mem.AllocFastFirst it is the first-touch baseline, and with mem.AllocFast
// it is the all-fast-tier upper bound of Fig. 11.
type Static struct {
	name string
}

var _ tier.Policy = (*Static)(nil)

// NewStatic returns a no-op policy with the given display name.
func NewStatic(name string) *Static { return &Static{name: name} }

// Name implements tier.Policy.
func (s *Static) Name() string { return s.name }

// Attach implements tier.Policy.
func (s *Static) Attach(tier.Env) {}

// OnSamples implements tier.Policy.
func (s *Static) OnSamples([]tier.Sample) {}

// Tick implements tier.Policy.
func (s *Static) Tick() {}

// MetadataBytes implements tier.Policy.
func (s *Static) MetadataBytes() int64 { return 0 }

// RecencyFree implements tier.RecencyFree: LRU orders pages from the sample
// stream and never consults Env.LastAccess.
func (l *LRU) RecencyFree() {}

// RecencyFree implements tier.RecencyFree: static placements consult
// nothing at all.
func (s *Static) RecencyFree() {}
