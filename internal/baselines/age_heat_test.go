package baselines

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/tier"
)

// --- Age ---

func TestAgePromotesSampledSlowPages(t *testing.T) {
	m, env := newEnv(128, 8)
	a := NewAge(DefaultAgeConfig(128, 8))
	a.Attach(env)
	m.Touch(5)
	a.OnSamples([]tier.Sample{{Page: 5, Tier: mem.Slow, Time: 1000}})
	if m.TierOf(5) != mem.Fast {
		t.Fatal("sampled slow page was not promoted")
	}
	st := a.Stats()
	if st.Samples != 1 || st.Promoted != 1 || st.Demoted != 0 {
		t.Fatalf("stats = %+v, want 1 sample / 1 promotion", st)
	}
	// A sample already on the fast tier refreshes its age but is not
	// re-promoted.
	a.OnSamples([]tier.Sample{{Page: 5, Tier: mem.Fast, Time: 2000}})
	if st := a.Stats(); st.Promoted != 1 {
		t.Fatalf("fast-tier sample changed promotions: %+v", st)
	}
}

func TestAgeEvictsIdlePagesToMakeRoom(t *testing.T) {
	m, env := newEnv(128, 4)
	cfg := DefaultAgeConfig(128, 4)
	cfg.IdleNs = 10_000_000
	a := NewAge(cfg)
	a.Attach(env)
	for p := mem.PageID(0); p < 4; p++ {
		m.Touch(p)
		a.OnSamples([]tier.Sample{{Page: p, Tier: mem.Slow, Time: 2_000_000}})
	}
	if m.FastFree() != 0 {
		t.Fatalf("fast tier not full: %d free", m.FastFree())
	}
	// A new hot page arrives long after the residents went idle: the
	// failed promotion must trigger an idle sweep and then succeed.
	m.Touch(10)
	a.OnSamples([]tier.Sample{{Page: 10, Tier: mem.Slow, Time: 50_000_000}})
	if m.TierOf(10) != mem.Fast {
		t.Fatal("hot page not promoted after idle sweep")
	}
	st := a.Stats()
	if st.Promoted != 5 || st.Demoted == 0 || st.Sweeps != 1 {
		t.Fatalf("stats = %+v, want 5 promotions, >0 demotions, 1 sweep", st)
	}
	slow := 0
	for p := mem.PageID(0); p < 4; p++ {
		if m.TierOf(p) == mem.Slow {
			slow++
		}
	}
	if int(st.Demoted) != slow {
		t.Fatalf("Demoted = %d but %d resident pages are slow", st.Demoted, slow)
	}
}

func TestAgeTickSweepSkipsFreshPages(t *testing.T) {
	m, env := newEnv(128, 4)
	a := NewAge(DefaultAgeConfig(128, 4)) // IdleNs 50 ms
	a.Attach(env)
	for p := mem.PageID(0); p < 4; p++ {
		m.Touch(p)
		a.OnSamples([]tier.Sample{{Page: p, Tier: mem.Slow, Time: 2_000_000}})
	}
	// Pages 0..2 stay fresh; page 3's last report is 58 ms stale.
	a.OnSamples([]tier.Sample{
		{Page: 0, Tier: mem.Fast, Time: 59_000_000},
		{Page: 1, Tier: mem.Fast, Time: 59_000_000},
		{Page: 2, Tier: mem.Fast, Time: 59_000_000},
	})
	env.Clock = 60_000_000
	a.Tick() // fast tier full => under watermark => sweep
	if m.TierOf(3) != mem.Slow {
		t.Fatal("idle page 3 survived the watermark sweep")
	}
	for p := mem.PageID(0); p < 3; p++ {
		if m.TierOf(p) != mem.Fast {
			t.Fatalf("fresh page %d was demoted", p)
		}
	}
	if st := a.Stats(); st.Demoted != 1 || st.Sweeps != 1 {
		t.Fatalf("stats = %+v, want exactly 1 demotion in 1 sweep", st)
	}
	if env.Charged == 0 {
		t.Fatal("sweep did not charge the tiering thread")
	}
}

func TestAgeSweepRateLimited(t *testing.T) {
	m, env := newEnv(64, 2)
	cfg := DefaultAgeConfig(64, 2)
	cfg.IdleNs = 1
	a := NewAge(cfg)
	a.Attach(env)
	for p := mem.PageID(0); p < 2; p++ {
		m.Touch(p)
		a.OnSamples([]tier.Sample{{Page: p, Tier: mem.Slow, Time: 0}})
	}
	// Promotion pressure well inside the rate-limit window: the sweep
	// must not run, so the promotion stays failed.
	m.Touch(9)
	a.OnSamples([]tier.Sample{{Page: 9, Tier: mem.Slow, Time: scanMinIntervalNs - 1}})
	if st := a.Stats(); st.Sweeps != 0 {
		t.Fatalf("sweep ran inside the rate-limit window: %+v", st)
	}
	if m.TierOf(9) != mem.Slow {
		t.Fatal("page promoted without room")
	}
}

func TestAgeAccessors(t *testing.T) {
	a := NewAge(DefaultAgeConfig(128, 8))
	if a.Name() != "Age" {
		t.Fatalf("Name = %q", a.Name())
	}
	if a.MetadataBytes() != 128*8 {
		t.Fatalf("MetadataBytes = %d, want 8 B/page", a.MetadataBytes())
	}
	cfg := DefaultAgeConfig(128, 8)
	cfg.Label = "Age-Idle"
	if got := NewAge(cfg).Name(); got != "Age-Idle" {
		t.Fatalf("labelled Name = %q", got)
	}
	a.RecencyFree() // must be a no-op, not a panic
}

// --- Heat ---

func TestHeatPromotesAtThreshold(t *testing.T) {
	m, env := newEnv(128, 8)
	h := NewHeat(DefaultHeatConfig(128, 8))
	h.Attach(env)
	if h.Threshold() != 2 {
		t.Fatalf("initial threshold = %d, want 2", h.Threshold())
	}
	m.Touch(5)
	h.OnSamples(samples(5))
	if m.TierOf(5) != mem.Slow {
		t.Fatal("promoted below threshold")
	}
	h.OnSamples(samples(5))
	if m.TierOf(5) != mem.Fast {
		t.Fatal("not promoted at threshold")
	}
	if st := h.Stats(); st.Samples != 2 || st.Promoted != 1 {
		t.Fatalf("stats = %+v, want 2 samples / 1 promotion", st)
	}
}

func TestHeatCoolsAndEvictsColdPages(t *testing.T) {
	m, env := newEnv(128, 4)
	h := NewHeat(DefaultHeatConfig(128, 4))
	h.Attach(env)
	for p := mem.PageID(0); p < 4; p++ {
		m.Touch(p)
		h.OnSamples(samples(p, p)) // heat to threshold => promoted
	}
	if m.FastFree() != 0 {
		t.Fatalf("fast tier not full: %d free", m.FastFree())
	}
	// Cool with the clock pinned at 0: the per-tick watermark demotion is
	// rate-limited away, so ticks only halve heat chunk by chunk. Two
	// full cooling cycles take every resident from heat 2 to 0.
	for i := 0; i < 2*(DefaultHeatConfig(128, 4).CoolTicks+2); i++ {
		h.Tick()
	}
	if st := h.Stats(); st.Cooled == 0 {
		t.Fatalf("cooling cycles recorded no cooled pages: %+v", st)
	}
	// A newly hot page now displaces a cooled resident.
	env.Clock = 2_000_000
	m.Touch(10)
	h.OnSamples(samples(10, 10))
	if m.TierOf(10) != mem.Fast {
		t.Fatal("hot page not promoted after cold eviction")
	}
	if st := h.Stats(); st.Demoted == 0 {
		t.Fatalf("no resident was demoted: %+v", st)
	}
}

func TestHeatRetuneRaisesThresholdWhenHotSetOverflows(t *testing.T) {
	m, env := newEnv(128, 2)
	h := NewHeat(DefaultHeatConfig(128, 2))
	h.Attach(env)
	// Heat 8 pages far past the fast tier's 2-page budget.
	for round := 0; round < 4; round++ {
		for p := mem.PageID(0); p < 8; p++ {
			m.Touch(p)
			h.OnSamples(samples(p))
		}
	}
	h.Tick()
	if h.Threshold() <= 2 {
		t.Fatalf("threshold = %d after 8 hot pages vs 2 fast slots, want > 2", h.Threshold())
	}
}

func TestHeatAccessors(t *testing.T) {
	h := NewHeat(DefaultHeatConfig(128, 8))
	if h.Name() != "Heat" {
		t.Fatalf("Name = %q", h.Name())
	}
	if h.MetadataBytes() != 128 {
		t.Fatalf("MetadataBytes = %d, want 1 B/page", h.MetadataBytes())
	}
	cfg := DefaultHeatConfig(128, 8)
	cfg.Label = "Heat-Dirty"
	if got := NewHeat(cfg).Name(); got != "Heat-Dirty" {
		t.Fatalf("labelled Name = %q", got)
	}
	h.RecencyFree() // must be a no-op, not a panic
}
