package baselines

import (
	"repro/internal/mem"
	"repro/internal/tier"
)

// List ids shared by the caching policies.
const (
	arcT1 uint8 = 1 + iota
	arcT2
	arcB1
	arcB2
)

// ARC adapts Megiddo & Modha's Adaptive Replacement Cache (FAST'03) to
// memory tiering, as the paper does in §5.2: the fast tier is the cache,
// sampled accesses are requests, and a miss promotes the page immediately
// (the "lenient promotion" behaviour §6.1 finds too aggressive). T1/T2 hold
// resident pages (recency/frequency), B1/B2 are ghost lists of recently
// evicted page ids.
type ARC struct {
	env   tier.Env
	lists *pageLists
	c     int // fast-tier capacity in pages
	p     int // adaptive target size of T1
	stats ARCStats
}

// ARCStats counts policy activity.
type ARCStats struct {
	Samples  uint64
	Hits     uint64
	Promoted uint64
	Demoted  uint64
}

var _ tier.Policy = (*ARC)(nil)

// NewARC constructs the policy for a page space of numPages and a fast
// tier of capacity pages. Pages are expected to be allocated slow-first
// (§5.2: "we initially allocate new memory pages on slow-tier memory").
func NewARC(numPages, capacity int) *ARC {
	return &ARC{lists: newPageLists(numPages, 4), c: capacity}
}

// Name implements tier.Policy.
func (a *ARC) Name() string { return "ARC" }

// Attach implements tier.Policy.
func (a *ARC) Attach(env tier.Env) { a.env = env }

// MetadataBytes implements tier.Policy.
func (a *ARC) MetadataBytes() int64 { return a.lists.metadataBytes() }

// Stats returns a copy of the activity counters.
func (a *ARC) Stats() ARCStats { return a.stats }

// Target returns the adaptive T1 target (test hook).
func (a *ARC) Target() int { return a.p }

// Tick implements tier.Policy; ARC acts purely per request.
func (a *ARC) Tick() {}

// OnSamples implements tier.Policy: each sample is one cache request.
func (a *ARC) OnSamples(batch []tier.Sample) {
	for _, s := range batch {
		a.stats.Samples++
		a.env.TouchMeta(int64(s.Page) * 9) // list-node update
		a.request(int32(s.Page))
	}
}

func (a *ARC) request(x int32) {
	l := a.lists
	switch l.on(x) {
	case arcT1, arcT2:
		// Case I: cache hit.
		a.stats.Hits++
		l.moveFront(arcT2, x)
	case arcB1:
		// Case II: ghost hit in B1 — recency is winning; grow T1's target.
		delta := 1
		if l.size(arcB1) > 0 && l.size(arcB2)/l.size(arcB1) > 1 {
			delta = l.size(arcB2) / l.size(arcB1)
		}
		a.p = min(a.c, a.p+delta)
		a.replace(false)
		l.remove(x)
		l.pushFront(arcT2, x)
		a.promote(x)
	case arcB2:
		// Case III: ghost hit in B2 — frequency is winning; shrink T1.
		delta := 1
		if l.size(arcB2) > 0 && l.size(arcB1)/l.size(arcB2) > 1 {
			delta = l.size(arcB1) / l.size(arcB2)
		}
		a.p = max(0, a.p-delta)
		a.replace(true)
		l.remove(x)
		l.pushFront(arcT2, x)
		a.promote(x)
	default:
		// Case IV: full miss.
		if l.size(arcT1)+l.size(arcB1) == a.c {
			if l.size(arcT1) < a.c {
				l.popBack(arcB1)
				a.replace(false)
			} else {
				// B1 empty and T1 full: evict T1's LRU outright.
				if y := l.popBack(arcT1); y >= 0 {
					a.demote(y)
				}
			}
		} else if l.size(arcT1)+l.size(arcB1) < a.c {
			total := l.size(arcT1) + l.size(arcT2) + l.size(arcB1) + l.size(arcB2)
			if total >= a.c {
				if total == 2*a.c {
					l.popBack(arcB2)
				}
				a.replace(false)
			}
		}
		l.pushFront(arcT1, x)
		a.promote(x)
	}
}

// replace evicts from T1 or T2 according to the adaptive target, moving the
// victim to the corresponding ghost list.
func (a *ARC) replace(inB2 bool) {
	l := a.lists
	if l.size(arcT1) >= 1 && (l.size(arcT1) > a.p || (inB2 && l.size(arcT1) == a.p)) {
		if y := l.popBack(arcT1); y >= 0 {
			a.demote(y)
			l.pushFront(arcB1, y)
		}
		return
	}
	if y := l.popBack(arcT2); y >= 0 {
		a.demote(y)
		l.pushFront(arcB2, y)
	}
}

func (a *ARC) promote(x int32) {
	if err := a.env.Promote(mem.PageID(x)); err == nil {
		a.stats.Promoted++
	}
}

func (a *ARC) demote(y int32) {
	if err := a.env.Demote(mem.PageID(y)); err == nil {
		a.stats.Demoted++
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RecencyFree implements tier.RecencyFree: ARC tracks recency in its own
// lists and never consults Env.LastAccess.
func (a *ARC) RecencyFree() {}
