package errfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func TestWriteAtomicReplacesAndLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.json")
	if err := WriteAtomic(OS{}, path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(OS{}, path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "two" {
		t.Fatalf("read back %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir holds %d entries after two atomic writes, want 1", len(entries))
	}
}

// TestWriteAtomicFaultsNeverTearDestination: whichever stage of the
// atomic write fails — the write itself, the file sync, or the rename —
// the destination keeps its previous contents and no temp file leaks.
func TestWriteAtomicFaultsNeverTearDestination(t *testing.T) {
	for _, fault := range []Fault{
		{Op: OpWrite},
		{Op: OpWrite, Short: 2}, // torn temp: prefix lands, then EIO
		{Op: OpSync},
		{Op: OpRename},
		{Op: OpCreateTemp},
	} {
		t.Run(string(fault.Op), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "v.json")
			if err := WriteAtomic(OS{}, path, []byte("intact")); err != nil {
				t.Fatal(err)
			}
			inj := Inject(OS{}, fault)
			if err := WriteAtomic(inj, path, []byte("replacement")); err == nil {
				t.Fatal("faulted WriteAtomic reported success")
			}
			got, err := os.ReadFile(path)
			if err != nil || string(got) != "intact" {
				t.Fatalf("destination after fault = %q, %v; want previous contents", got, err)
			}
			entries, _ := os.ReadDir(dir)
			for _, e := range entries {
				if strings.HasPrefix(e.Name(), ".atomic-") {
					t.Errorf("temp file %s leaked", e.Name())
				}
			}
		})
	}
}

func TestInjectorSchedule(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	inj := Inject(OS{}, Fault{Op: OpRemove, After: 1, Err: boom})
	a := filepath.Join(dir, "a")
	for _, p := range []string{a, filepath.Join(dir, "b"), filepath.Join(dir, "c")} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := inj.Remove(a); err != nil {
		t.Fatalf("first remove (After skips it): %v", err)
	}
	if err := inj.Remove(filepath.Join(dir, "b")); !errors.Is(err, boom) {
		t.Fatalf("second remove = %v, want the injected error", err)
	}
	// Non-persistent: the rule fired once; later ops succeed.
	if err := inj.Remove(filepath.Join(dir, "c")); err != nil {
		t.Fatalf("third remove after a one-shot fault: %v", err)
	}
	if inj.Count(OpRemove) != 3 {
		t.Errorf("Count(remove) = %d, want 3", inj.Count(OpRemove))
	}
}

func TestInjectorPersistentStorm(t *testing.T) {
	inj := Inject(OS{}, Fault{Op: OpSyncDir, Persistent: true})
	for i := 0; i < 3; i++ {
		if err := inj.SyncDir(t.TempDir()); err == nil {
			t.Fatalf("syncdir %d survived a persistent fault", i)
		} else if !errors.Is(err, syscall.EIO) {
			t.Fatalf("default injected error = %v, want EIO", err)
		}
	}
}

// TestInjectorCrashFreezesMutations: after a Crash fault fires, reads
// still serve (the restarted process inspecting the disk) while every
// mutation fails with ErrCrashed.
func TestInjectorCrashFreezesMutations(t *testing.T) {
	dir := t.TempDir()
	keep := filepath.Join(dir, "keep")
	if err := os.WriteFile(keep, []byte("survives"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := Inject(OS{}, Fault{Op: OpRename, Crash: true})
	if err := inj.Rename(keep, filepath.Join(dir, "moved")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("crash fault returned %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("Crashed() false after the fault fired")
	}
	if err := inj.Remove(keep); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash mutation = %v, want ErrCrashed", err)
	}
	if _, err := inj.CreateTemp(dir, "x-*"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create = %v, want ErrCrashed", err)
	}
	if got, err := inj.ReadFile(keep); err != nil || string(got) != "survives" {
		t.Fatalf("post-crash read = %q, %v; reads must keep working", got, err)
	}
}

// TestInjectorShortWriteTearsFile: a Short write fault lands the prefix
// in the real file — the torn-record shape journal recovery must handle.
func TestInjectorShortWriteTearsFile(t *testing.T) {
	dir := t.TempDir()
	inj := Inject(OS{}, Fault{Op: OpWrite, Short: 4})
	f, err := inj.OpenFile(filepath.Join(dir, "torn"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("full record"))
	f.Close()
	if werr == nil {
		t.Fatal("short write reported success")
	}
	if n != 4 {
		t.Fatalf("short write landed %d bytes, want 4", n)
	}
	got, err := os.ReadFile(filepath.Join(dir, "torn"))
	if err != nil || string(got) != "full" {
		t.Fatalf("torn file holds %q, %v", got, err)
	}
}
