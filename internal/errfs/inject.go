package errfs

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"sync"
	"syscall"
)

// Op names one injectable filesystem operation, matching the FS method
// (lowercased) that performs it. "write" and "sync" fire inside File
// handles opened through the injector.
type Op string

// The injectable operations.
const (
	OpMkdirAll   Op = "mkdirall"
	OpCreateTemp Op = "createtemp"
	OpOpenFile   Op = "openfile"
	OpReadFile   Op = "readfile"
	OpReadDir    Op = "readdir"
	OpStat       Op = "stat"
	OpRename     Op = "rename"
	OpRemove     Op = "remove"
	OpTruncate   Op = "truncate"
	OpSyncDir    Op = "syncdir"
	OpWrite      Op = "write"
	OpSync       Op = "sync"
)

// Fault is one rule of an Injector's plan: the Nth operation matching
// (Op, Path substring) misbehaves.
type Fault struct {
	// Op selects the operation kind (required).
	Op Op
	// Path, when non-empty, restricts the rule to paths containing it.
	Path string
	// After skips that many matching operations before firing, so a test
	// can let a store warm up and then break the disk under it.
	After int
	// Err is returned when the rule fires (default syscall.EIO).
	Err error
	// Short, on a write fault, is how many bytes land before the error —
	// the torn-write case. Zero tears nothing: the write fails whole.
	Short int
	// Crash, when set, freezes the filesystem once the rule fires: every
	// later mutating operation (and the faulted one) fails with ErrCrashed.
	// What was durably on "disk" at that instant is exactly what a
	// restarted store gets to see — the kill-9 model.
	Crash bool
	// Persistent keeps the rule firing on every later match instead of
	// only once — an EIO storm rather than a single bad sector.
	Persistent bool

	fired bool
}

// ErrCrashed is what every mutation returns after a Crash fault fires.
var ErrCrashed = errors.New("errfs: filesystem crashed (fault plan)")

// Injector wraps an FS with a deterministic fault plan. Operations are
// counted per (Op, Path-rule) so schedules are reproducible; all methods
// are safe for concurrent use.
type Injector struct {
	under FS

	mu      sync.Mutex
	faults  []*Fault
	counts  map[Op]int
	crashed bool
}

// Inject wraps under with the given fault plan.
func Inject(under FS, faults ...Fault) *Injector {
	inj := &Injector{under: under, counts: map[Op]int{}}
	for i := range faults {
		f := faults[i]
		inj.faults = append(inj.faults, &f)
	}
	return inj
}

// Count reports how many operations of kind op have been attempted.
func (inj *Injector) Count(op Op) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.counts[op]
}

// Crashed reports whether a Crash fault has fired.
func (inj *Injector) Crashed() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.crashed
}

// check counts the operation and returns the injected error (and, for
// writes, the short-byte count) if a rule fires.
func (inj *Injector) check(op Op, path string) (error, int) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.counts[op]++
	if inj.crashed && mutates(op) {
		return ErrCrashed, 0
	}
	for _, f := range inj.faults {
		if f.Op != op || (f.fired && !f.Persistent) {
			continue
		}
		if f.Path != "" && !strings.Contains(path, f.Path) {
			continue
		}
		if f.After > 0 {
			f.After--
			continue
		}
		f.fired = true
		if f.Crash {
			inj.crashed = true
		}
		err := f.Err
		if err == nil {
			err = fmt.Errorf("errfs: injected %s on %s: %w", op, path, syscall.EIO)
		}
		return err, f.Short
	}
	return nil, 0
}

// mutates reports whether op changes the filesystem — reads keep working
// after a crash (the process reading back what survived), mutations fail.
func mutates(op Op) bool {
	switch op {
	case OpReadFile, OpReadDir, OpStat:
		return false
	}
	return true
}

func (inj *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := inj.check(OpMkdirAll, path); err != nil {
		return err
	}
	return inj.under.MkdirAll(path, perm)
}

func (inj *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := inj.check(OpCreateTemp, dir); err != nil {
		return nil, err
	}
	f, err := inj.under.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{under: f, inj: inj}, nil
}

func (inj *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err, _ := inj.check(OpOpenFile, name); err != nil {
		return nil, err
	}
	f, err := inj.under.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{under: f, inj: inj}, nil
}

func (inj *Injector) ReadFile(name string) ([]byte, error) {
	if err, _ := inj.check(OpReadFile, name); err != nil {
		return nil, err
	}
	return inj.under.ReadFile(name)
}

func (inj *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if err, _ := inj.check(OpReadDir, name); err != nil {
		return nil, err
	}
	return inj.under.ReadDir(name)
}

func (inj *Injector) Stat(name string) (fs.FileInfo, error) {
	if err, _ := inj.check(OpStat, name); err != nil {
		return nil, err
	}
	return inj.under.Stat(name)
}

func (inj *Injector) Rename(oldpath, newpath string) error {
	if err, _ := inj.check(OpRename, newpath); err != nil {
		return err
	}
	return inj.under.Rename(oldpath, newpath)
}

func (inj *Injector) Remove(name string) error {
	if err, _ := inj.check(OpRemove, name); err != nil {
		return err
	}
	return inj.under.Remove(name)
}

func (inj *Injector) Truncate(name string, size int64) error {
	if err, _ := inj.check(OpTruncate, name); err != nil {
		return err
	}
	return inj.under.Truncate(name, size)
}

func (inj *Injector) SyncDir(dir string) error {
	if err, _ := inj.check(OpSyncDir, dir); err != nil {
		return err
	}
	return inj.under.SyncDir(dir)
}

// injFile threads write/sync faults into a File handle. A short write
// lands its prefix through the real file first, so what a later reader
// (or a restarted store) sees is a genuinely torn record, not a clean
// absence.
type injFile struct {
	under File
	inj   *Injector
}

func (f *injFile) Write(p []byte) (int, error) {
	err, short := f.inj.check(OpWrite, f.under.Name())
	if err != nil {
		if short > 0 && short < len(p) {
			n, _ := f.under.Write(p[:short])
			return n, err
		}
		return 0, err
	}
	return f.under.Write(p)
}

func (f *injFile) Sync() error {
	if err, _ := f.inj.check(OpSync, f.under.Name()); err != nil {
		return err
	}
	return f.under.Sync()
}

func (f *injFile) Close() error { return f.under.Close() }
func (f *injFile) Name() string { return f.under.Name() }
