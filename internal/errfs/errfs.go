// Package errfs is the filesystem seam under every durable store in the
// daemon: the jobs result cache, the job journal, and the trace corpus
// all perform their disk I/O through the FS interface instead of calling
// the os package directly. Production uses OS, a thin passthrough; tests
// use Injector (inject.go), which wraps any FS with a deterministic
// fault plan — EIO on the Nth write, short writes, sync failures, or a
// "crash" that freezes the tree mid-operation — so the stores' claimed
// crash-safety (docs/DURABILITY.md) is proven against injected disk
// faults rather than asserted.
//
// The package also owns the one correct spelling of a durable atomic
// write, WriteAtomic: stage to a temp file, write, fsync the FILE, close,
// rename over the destination, fsync the DIRECTORY. Skipping the file
// sync risks renaming an empty or torn file into place after a power cut
// (the data may still be in the page cache when the metadata lands);
// skipping the directory sync risks the rename itself vanishing. Every
// store writes through this helper so the discipline cannot drift
// per-callsite.
package errfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the stores need: sequential writes,
// durability, and identity. Reads go through FS.ReadFile instead — the
// stores never seek inside a file they are mutating.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	Close() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface the durable stores consume. Methods mirror
// the os package; an implementation may fail any of them to model a
// hostile disk.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	CreateTemp(dir, pattern string) (File, error)
	// OpenFile opens for writing (the journal's append path).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory so a completed rename inside it is
	// durable, not merely staged in the page cache.
	SyncDir(dir string) error
}

// OS is the production FS: a passthrough to the os package.
type OS struct{}

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (OS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                   { return os.Remove(name) }
func (OS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// A directory fsync can fail on exotic filesystems; the close error is
	// irrelevant next to the sync's.
	err = d.Sync()
	d.Close()
	return err
}

// WriteAtomic durably replaces path with data: temp file in the same
// directory, write, fsync, close, rename, directory fsync. On any error
// the temp file is removed and path is untouched — a reader never
// observes a torn or half-written file, before or after a crash.
func WriteAtomic(fsys FS, path string, data []byte) error {
	tmp, err := fsys.CreateTemp(filepath.Dir(path), ".atomic-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
