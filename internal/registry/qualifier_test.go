package registry

import "testing"

func TestSplitPolicyQualifier(t *testing.T) {
	cases := []struct {
		in        string
		policy    string
		tracker   string
		qualified bool
	}{
		{"LRU", "LRU", "", false},
		{"LRU@pebs", "LRU", "pebs", true},
		{"Heat-Idle@softdirty", "Heat-Idle", "softdirty", true},
		// An empty qualifier is still a qualifier: "LRU@" means "LRU under
		// the default tracker", distinct from plain "LRU" only syntactically.
		{"LRU@", "LRU", "", true},
		// The first separator binds; anything after it is the tracker's
		// problem to validate (the registry does not know tracker names).
		{"LRU@a@b", "LRU", "a@b", true},
		{"@pebs", "", "pebs", true},
		{"", "", "", false},
	}
	for _, c := range cases {
		p, trk, q := SplitPolicyQualifier(c.in)
		if p != c.policy || trk != c.tracker || q != c.qualified {
			t.Errorf("SplitPolicyQualifier(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.in, p, trk, q, c.policy, c.tracker, c.qualified)
		}
	}
}
