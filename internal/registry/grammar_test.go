package registry

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// grammarRegistry returns a fresh registry with two stub generators.
func grammarRegistry() *WorkloadRegistry {
	r := NewWorkloadRegistry()
	r.MustRegister(stubWorkload("a"))
	r.MustRegister(stubWorkload("b"))
	return r
}

func TestGrammarValidSpecsResolve(t *testing.T) {
	r := grammarRegistry()
	cases := []struct {
		spec  string
		pages int
	}{
		{"mix:0.7*a,0.3*b", 128},
		{"mix:a,b,a", 192},      // weights default to 1
		{"phases:a@1000,b", 64}, // shared page space
		{"repeat:a@500", 64},
		{"offset:a+100", 164},
		{"scale:a*4", 256},
		{"(a)", 64},                            // parenthesized leaf
		{"mix:0.5*(phases:a@10,b),0.5*b", 128}, // nested combinator
		{"offset:(mix:a,b)+64", 192},           // combinator under a transform
	}
	for _, c := range cases {
		if err := r.Validate(c.spec); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", c.spec, err)
			continue
		}
		src, err := r.New(c.spec, WorkloadParams{Seed: 1})
		if err != nil {
			t.Errorf("New(%q) = %v", c.spec, err)
			continue
		}
		if src.NumPages() != c.pages {
			t.Errorf("New(%q).NumPages() = %d, want %d", c.spec, src.NumPages(), c.pages)
		}
	}
}

func TestGrammarErrorsAreDescriptive(t *testing.T) {
	r := grammarRegistry()
	cases := []struct {
		spec string
		want string // substring the error must carry
	}{
		{"mix:0.7*a", "at least two"},
		{"mix:0*a,1*b", "weight"},
		{"mix:-1*a,1*b", "weight"},
		{"mix:0.5*a,0.5*nope", `"nope"`},
		{"phases:a", "at least two"},
		{"phases:a@5,b@6", "final phase"},
		{"phases:a,b", "op count"},
		{"repeat:a", "op count"},
		{"repeat:a@0", "op count"},
		{"offset:a", "page count"},
		{"scale:a", "factor"},
		{"scale:a*0", "factor"},
		{"mix:0.5*(phases:a@10,b,0.5*b", "unbalanced"},
		{"mix:0.5*a),0.5*b", "unbalanced"},
		{"mix:0.5*mix:a,b", "parenthesized"},
		{"", "empty workload name"},
		{"trace:", "path"},
	}
	for _, c := range cases {
		err := r.Validate(c.spec)
		if err == nil {
			t.Errorf("Validate(%q) = nil, want error mentioning %q", c.spec, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%q) = %q, want it to mention %q", c.spec, err, c.want)
		}
		if _, nerr := r.New(c.spec, WorkloadParams{Seed: 1}); nerr == nil {
			t.Errorf("New(%q) succeeded although Validate rejected it", c.spec)
		}
	}
}

func TestGrammarDepthBounded(t *testing.T) {
	r := grammarRegistry()
	deep := "a"
	for i := 0; i < maxSpecDepth+2; i++ {
		deep = "(" + deep + ")"
	}
	if err := r.Validate(deep); err == nil || !strings.Contains(err.Error(), "deep") {
		t.Fatalf("Validate(deep nest) = %v, want depth error", err)
	}
}

// TestGrammarTenantsGetDistinctSeeds: two tenants of the same generator
// must draw different streams, and the whole composition must be a pure
// function of the run seed.
func TestGrammarTenantsGetDistinctSeeds(t *testing.T) {
	r := grammarRegistry()
	draw := func(src trace.Source, n int) []trace.Access {
		var out, buf []trace.Access
		for i := 0; i < n; i++ {
			buf = src.NextOp(buf[:0])
			out = append(out, buf...)
		}
		return out
	}
	m1, err := r.New("mix:a,a", WorkloadParams{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.New("mix:a,a", WorkloadParams{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := draw(m1, 200), draw(m2, 200)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same spec and seed must reproduce the identical stream")
		}
	}
	// The two tenants occupy [0,64) and [64,128); strip the remap and the
	// streams must still differ, or both tenants got the same seed.
	same := true
	for i := 0; i+1 < len(s1); i += 2 {
		if s1[i].Page != s1[i+1].Page-64 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("tenants of the same generator drew identical streams: seed derivation is broken")
	}
}

func TestSpecSyntaxCoversEveryScheme(t *testing.T) {
	help := strings.Join(SpecSyntax(), "\n")
	for _, scheme := range []string{"mix:", "phases:", "repeat:", "offset:", "scale:"} {
		if !strings.Contains(help, scheme) {
			t.Errorf("SpecSyntax() does not mention %q", scheme)
		}
	}
}

// TestGrammarTracePathsWithMetacharacters: counts bind rightmost, so a
// trace path containing '@' still parses inside repeat/phases specs.
func TestGrammarTracePathsWithMetacharacters(t *testing.T) {
	r := grammarRegistry()
	for _, spec := range []string{
		"repeat:trace:/tmp/run@2.htrc@100",
		"phases:a@5,trace:/tmp/x@y.htrc",
		"mix:0.5*a,0.5*(trace:/tmp/b+c.htrc)",
	} {
		if err := r.Validate(spec); err != nil {
			t.Errorf("Validate(%q) = %v, want nil (trace paths are opaque)", spec, err)
		}
	}
}
