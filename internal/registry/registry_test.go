package registry

import (
	"strings"
	"testing"

	"io"
	"path/filepath"

	"repro/internal/mem"
	"repro/internal/tier"
	"repro/internal/trace"
	"repro/internal/tracefile"
)

func stubPolicy(name string) PolicyEntry {
	return PolicyEntry{
		Name: name,
		New: func(int, int, bool) (tier.Policy, mem.AllocMode, error) {
			return nil, mem.AllocFastFirst, nil
		},
	}
}

func stubWorkload(name string) WorkloadEntry {
	return WorkloadEntry{
		Name: name,
		New: func(p WorkloadParams) (trace.Source, error) {
			return trace.NewZipfSource(name, 64, 1.0, 0, p.Seed), nil
		},
	}
}

func TestPolicyRegistryRegisterErrors(t *testing.T) {
	r := NewPolicyRegistry()
	if err := r.Register(PolicyEntry{}); err == nil {
		t.Error("empty entry must fail")
	}
	if err := r.Register(stubPolicy("A")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(stubPolicy("A")); err == nil {
		t.Error("duplicate registration must fail")
	}
}

func TestPolicyRegistryUnknownNameError(t *testing.T) {
	r := NewPolicyRegistry()
	r.MustRegister(stubPolicy("Known"))
	_, _, err := r.New("Nope", 100, 10, false)
	if err == nil {
		t.Fatal("unknown policy must fail")
	}
	if !strings.Contains(err.Error(), `"Nope"`) || !strings.Contains(err.Error(), "Known") {
		t.Errorf("error should name the unknown and the known policies: %v", err)
	}
}

func TestPolicyRegistryNamesSorted(t *testing.T) {
	r := NewPolicyRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.MustRegister(stubPolicy(n))
	}
	got := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestWorkloadRegistryRoundTrip(t *testing.T) {
	r := NewWorkloadRegistry()
	if err := r.Register(WorkloadEntry{Name: "w"}); err == nil {
		t.Error("entry without constructor must fail")
	}
	r.MustRegister(stubWorkload("w"))
	if err := r.Register(stubWorkload("w")); err == nil {
		t.Error("duplicate registration must fail")
	}
	w, err := r.New("w", WorkloadParams{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumPages() != 64 {
		t.Errorf("NumPages = %d", w.NumPages())
	}
	if _, err := r.New("missing", WorkloadParams{}); err == nil ||
		!strings.Contains(err.Error(), `"missing"`) {
		t.Errorf("unknown workload error should name it, got %v", err)
	}
}

func TestGlobalRegistriesPopulated(t *testing.T) {
	// The facade's blank imports are what guarantee registration for
	// downstream users; this package only sees entries registered by
	// packages imported from this test binary. The globals must at least
	// exist and be usable.
	if Policies == nil || Workloads == nil {
		t.Fatal("global registries must be initialized")
	}
}

// TestTraceSchemeResolution: "trace:<path>" names open a recorded trace as
// the workload, bypassing the registered entries; the reader stands in for
// the recorded source with its name and page space.
func TestTraceSchemeResolution(t *testing.T) {
	r := NewWorkloadRegistry()
	path := filepath.Join(t.TempDir(), "w.htrc")
	w, err := tracefile.Create(path, tracefile.Meta{Name: "captured", NumPages: 128, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	src := trace.NewZipfSource("captured", 128, 1.0, 0, 5)
	var buf []trace.Access
	for i := 0; i < 50; i++ {
		buf = src.NextOp(buf[:0])
		if err := w.WriteOp(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := r.New(TraceScheme+path, WorkloadParams{Seed: 99})
	if err != nil {
		t.Fatalf("New(trace:...): %v", err)
	}
	defer got.(io.Closer).Close()
	if got.Name() != "captured" || got.NumPages() != 128 {
		t.Fatalf("resolved %q/%d, want captured/128", got.Name(), got.NumPages())
	}

	if _, err := r.New(TraceScheme, WorkloadParams{}); err == nil {
		t.Fatal("bare trace: scheme accepted")
	}
	if _, err := r.New(TraceScheme+path+".missing", WorkloadParams{}); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
