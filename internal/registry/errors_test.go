package registry

import "testing"

// TestValidateExactErrorMessages pins the EXACT text of every grammar and
// validation failure. These strings are part of the service API: the
// experiment daemon's 400 responses carry them verbatim (docs/SERVICE.md),
// so clients may match on them and a rewording is a breaking change. The
// grammar tests elsewhere check substrings; this table is the contract.
func TestValidateExactErrorMessages(t *testing.T) {
	r := grammarRegistry() // registers exactly "a" and "b"
	cases := []struct {
		name string // subtest label
		spec string
		want string
	}{
		{
			"empty",
			"",
			`registry: workload "": empty workload name`,
		},
		{
			"unknown name",
			"nope",
			`registry: workload "nope": unknown workload "nope" (known: a, b)`,
		},
		{
			"metacharacters in name",
			"cdn+silo",
			`registry: workload "cdn+silo": workload name "cdn+silo" contains grammar metacharacters; registered names never do`,
		},
		{
			"bare trace scheme",
			"trace:",
			`registry: workload "trace:": "trace:" needs a path after the scheme`,
		},
		{
			"mix with one tenant",
			"mix:0.7*a",
			`registry: workload "mix:0.7*a": mix needs at least two comma-separated tenants, got 1 in "0.7*a"`,
		},
		{
			"mix weight zero",
			"mix:0*a,1*b",
			`registry: workload "mix:0*a,1*b": mix weight 0 outside (0, 1e+09]`,
		},
		{
			"mix weight negative",
			"mix:-2*a,1*b",
			`registry: workload "mix:-2*a,1*b": mix weight -2 outside (0, 1e+09]`,
		},
		{
			"mix weight unparsable",
			"mix:x*a,b",
			`registry: workload "mix:x*a,b": bad mix weight "x": strconv.ParseFloat: parsing "x": invalid syntax`,
		},
		{
			"mix unknown tenant",
			"mix:0.5*a,0.5*nope",
			`registry: workload "mix:0.5*a,0.5*nope": unknown workload "nope" (known: a, b)`,
		},
		{
			"phases stage without op count",
			"phases:a,b",
			`registry: workload "phases:a,b": phase stage "a" needs an op count: write name@ops`,
		},
		{
			"phases single stage",
			"phases:a@10",
			`registry: workload "phases:a@10": phases need at least two comma-separated stages, got 1 in "a@10"`,
		},
		{
			"phases final stage with op count",
			"phases:a@10,b@20",
			`registry: workload "phases:a@10,b@20": the final phase runs until the simulation ends; drop "@20"`,
		},
		{
			"repeat without op count",
			"repeat:a",
			`registry: workload "repeat:a": repeat needs an op count: repeat:name@ops, got "a"`,
		},
		{
			"repeat op count zero",
			"repeat:a@0",
			`registry: workload "repeat:a@0": repeat op count 0 outside [1, 1099511627776]`,
		},
		{
			"offset without page count",
			"offset:a",
			`registry: workload "offset:a": offset needs a page count: offset:name+pages, got "a"`,
		},
		{
			"offset page count negative",
			"offset:a+-1",
			`registry: workload "offset:a+-1": offset page count -1 outside [0, 1099511627776]`,
		},
		{
			"scale without factor",
			"scale:a",
			`registry: workload "scale:a": scale needs a factor: scale:name*factor, got "a"`,
		},
		{
			"scale factor too large",
			"scale:a*2000000",
			`registry: workload "scale:a*2000000": scale factor 2000000 outside [1, 1048576]`,
		},
		{
			"unbalanced open paren",
			"mix:0.5*(a,0.5*b",
			`registry: workload "mix:0.5*(a,0.5*b": unbalanced '(' in "0.5*(a,0.5*b"`,
		},
		{
			"unbalanced close paren",
			"mix:a),b",
			`registry: workload "mix:a),b": unbalanced ')' at byte 1 of "a),b"`,
		},
		{
			"unparenthesized nested combinator",
			"mix:0.5*mix:a,b,0.5*a",
			`registry: workload "mix:0.5*mix:a,b,0.5*a": nested combinators must be parenthesized: write (mix:a)`,
		},
		{
			"bad op count syntax",
			"phases:a@ten,b",
			`registry: workload "phases:a@ten,b": bad phase op count "ten": strconv.ParseInt: parsing "ten": invalid syntax`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := r.Validate(c.spec)
			if err == nil {
				t.Fatalf("Validate(%q) = nil, want error", c.spec)
			}
			if err.Error() != c.want {
				t.Errorf("Validate(%q) =\n  %q\nwant\n  %q", c.spec, err.Error(), c.want)
			}
			// Normalize must diagnose identically: the daemon normalizes on
			// submit, so its 400 body is whichever of the two ran first.
			if _, nerr := r.Normalize(c.spec); nerr == nil || nerr.Error() != c.want {
				t.Errorf("Normalize(%q) error %v diverges from Validate's", c.spec, nerr)
			}
		})
	}
}
