package registry

import (
	"reflect"
	"testing"
)

func TestNormalizeCanonicalForms(t *testing.T) {
	r := grammarRegistry()
	cases := []struct {
		in, want string
	}{
		// Plain names pass through untouched.
		{"a", "a"},
		{"  a  ", "a"},
		{"trace:/tmp/x.htrc", "trace:/tmp/x.htrc"},
		// Parenthesized leaves lose their parentheses.
		{"(a)", "a"},
		{"((a))", "a"},
		// Mix weights become explicit; whitespace is stripped.
		{"mix:a,b", "mix:1*a,1*b"},
		{"mix: 0.7*a , 0.3*b", "mix:0.7*a,0.3*b"},
		{"mix:0.70*a,0.30*b", "mix:0.7*a,0.3*b"},
		// A parenthesized leaf inside a combinator is rendered bare; a
		// nested combinator keeps exactly one set of parentheses.
		{"mix:0.5*(a),0.5*(b)", "mix:0.5*a,0.5*b"},
		{"mix:0.5*((phases:a@10,b)),0.5*b", "mix:0.5*(phases:a@10,b),0.5*b"},
		{"phases:a@1000,b", "phases:a@1000,b"},
		{"phases: a @ 1000 , b", "phases:a@1000,b"},
		{"repeat:(a)@500", "repeat:a@500"},
		{"offset:a+100", "offset:a+100"},
		{"scale:(mix:a,b)*4", "scale:(mix:1*a,1*b)*4"},
	}
	for _, c := range cases {
		got, err := r.Normalize(c.in)
		if err != nil {
			t.Errorf("Normalize(%q) = error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNormalizeRoundTrip: the canonical form must be a fixed point — it
// re-parses to the same tree and re-normalizes to itself. Hashing a
// canonical spec is only sound if this holds.
func TestNormalizeRoundTrip(t *testing.T) {
	r := grammarRegistry()
	specs := []string{
		"a",
		"mix:a,b,a",
		"mix:0.125*a,0.875*(phases:a@10,b)",
		"phases:a@1000,(repeat:b@50)",
		"repeat:(offset:a+64)@500",
		"offset:(scale:b*2)+100",
		"scale:(mix:0.5*a,0.5*(phases:a@7,b))*3",
	}
	for _, s := range specs {
		canon, err := r.Normalize(s)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", s, err)
		}
		again, err := r.Normalize(canon)
		if err != nil {
			t.Fatalf("Normalize(%q) [canonical of %q]: %v", canon, s, err)
		}
		if again != canon {
			t.Errorf("canonical form is not a fixed point: %q -> %q -> %q", s, canon, again)
		}
		// Structural round trip, not just string equality of the second pass.
		n1, err := parseSpec(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := parseSpec(canon, 0)
		if err != nil {
			t.Fatalf("canonical %q does not re-parse: %v", canon, err)
		}
		if !reflect.DeepEqual(n1, n2) {
			t.Errorf("parse(%q) != parse(%q)", s, canon)
		}
	}
}

func TestNormalizeRejectsWhatValidateRejects(t *testing.T) {
	r := grammarRegistry()
	for _, s := range []string{"", "mix:a", "phases:a,b", "nope", "mix:0.5*(a,0.5*b"} {
		if _, err := r.Normalize(s); err == nil {
			t.Errorf("Normalize(%q) accepted an invalid spec", s)
		}
		if err := r.Validate(s); err == nil {
			t.Errorf("Validate(%q) accepted an invalid spec", s)
		}
	}
}
