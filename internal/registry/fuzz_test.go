package registry

// FuzzRegistryParse proves the satellite contract of the composition
// grammar: no input — however malformed — may panic the parser, the
// validator, or the builder. Bad specs must come back as errors.

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

// fuzzRegistry is shared across fuzz iterations (construction is cheap
// but the corpus runs millions of inputs).
var (
	fuzzRegOnce sync.Once
	fuzzReg     *WorkloadRegistry
)

func grammarFuzzRegistry() *WorkloadRegistry {
	fuzzRegOnce.Do(func() {
		fuzzReg = NewWorkloadRegistry()
		fuzzReg.MustRegister(stubWorkload("a"))
		fuzzReg.MustRegister(stubWorkload("b"))
	})
	return fuzzReg
}

func FuzzRegistryParse(f *testing.F) {
	seeds := []string{
		"a",
		"mix:0.7*a,0.3*b",
		"phases:a@1000000,b",
		"repeat:a@5000",
		"offset:a+4096",
		"scale:a*8",
		"mix:0.5*(phases:a@10,b),0.5*(repeat:b@7)",
		"trace:/tmp/x.htrc",
		"mix:0.7*a",                    // too few tenants
		"phases:a@0,b",                 // zero quota
		"mix:((((((((a",                // unbalanced
		"scale:a*99999999999999999999", // overflowing count
		"mix:NaN*a,1*b",
		"offset:a+-1",
		"(((((((((((((((((((((((((((((((((((a)))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		r := grammarFuzzRegistry()
		// Neither validation nor construction may panic; errors are the
		// contract for malformed input.
		verr := r.Validate(spec)
		src, nerr := r.New(spec, WorkloadParams{Seed: 1, Pages: 64})
		// Validate never touches the filesystem, so it can accept a spec
		// whose trace: leaf later fails to open — but a spec it rejects
		// must never build.
		if verr != nil && nerr == nil {
			t.Fatalf("Validate rejected %q (%v) but New accepted it", spec, verr)
		}
		if nerr == nil {
			// A constructed composition must honor the Source contract on
			// a few ops without panicking, then release its resources.
			bs := trace.AsBatchSource(src)
			var buf []trace.Access
			for i := 0; i < 4; i++ {
				buf = bs.NextBatch(buf[:0], 8)
				src.AdvanceTime(int64(i) * 1000)
			}
			if c, ok := src.(interface{ Close() error }); ok {
				c.Close()
			}
		}
	})
}
