package registry

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracefile"
)

// corpusTestHash is a well-formed (lowercase hex sha256) address.
var corpusTestHash = strings.Repeat("ab", 32)

func TestCorpusSpecValidation(t *testing.T) {
	r := NewWorkloadRegistry()
	r.MustRegister(WorkloadEntry{Name: "wl", Doc: "test", New: func(p WorkloadParams) (trace.Source, error) {
		return trace.NewZipfSource("wl", 64, 1.0, 0, p.Seed), nil
	}})
	ok := []string{
		"corpus:" + corpusTestHash,
		"mix:0.5*wl,0.5*corpus:" + corpusTestHash,
		"repeat:corpus:" + corpusTestHash + "@100",
	}
	for _, spec := range ok {
		if err := r.Validate(spec); err != nil {
			t.Errorf("Validate(%q) = %v", spec, err)
		}
		if _, err := r.Normalize(spec); err != nil {
			t.Errorf("Normalize(%q) = %v", spec, err)
		}
	}
	bad := []string{
		"corpus:",
		"corpus:short",
		"corpus:" + strings.ToUpper(corpusTestHash),
		"corpus:" + corpusTestHash[:63] + "x",
	}
	for _, spec := range bad {
		if err := r.Validate(spec); err == nil {
			t.Errorf("Validate(%q) accepted a malformed hash", spec)
		}
	}
}

func TestCorpusHashes(t *testing.T) {
	r := NewWorkloadRegistry()
	h2 := strings.Repeat("cd", 32)
	spec := fmt.Sprintf("mix:corpus:%s,corpus:%s,corpus:%s", corpusTestHash, h2, corpusTestHash)
	got, err := r.CorpusHashes(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != corpusTestHash || got[1] != h2 {
		t.Fatalf("CorpusHashes = %v, want deduped [%s %s]", got, corpusTestHash, h2)
	}
	if got, err := r.CorpusHashes("zipf"); err != nil || len(got) != 0 {
		t.Fatalf("CorpusHashes(zipf) = %v, %v", got, err)
	}
}

func TestCorpusNotFlaggedAsTrace(t *testing.T) {
	r := NewWorkloadRegistry()
	has, err := r.HasTraceWorkload("corpus:" + corpusTestHash)
	if err != nil {
		t.Fatal(err)
	}
	if has {
		t.Fatal("corpus workload flagged as a trace path; it would be barred from the result cache")
	}
	has, err = r.HasTraceWorkload("trace:/tmp/x.htrc")
	if err != nil || !has {
		t.Fatalf("trace path not flagged: %v, %v", has, err)
	}
}

func TestCorpusResolution(t *testing.T) {
	// Without a resolver, corpus workloads fail with a pointed error.
	SetCorpusResolver(nil)
	r := NewWorkloadRegistry()
	if _, err := r.New("corpus:"+corpusTestHash, WorkloadParams{Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "no corpus store") {
		t.Fatalf("resolver-less build: %v", err)
	}

	// With one installed, the hash opens the file the resolver names.
	path := filepath.Join(t.TempDir(), "c.htrc")
	w, err := tracefile.Create(path, tracefile.Meta{Name: "c", NumPages: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	w.WriteOp([]trace.Access{{Page: 9}})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	SetCorpusResolver(func(hash string) (string, error) {
		if hash != corpusTestHash {
			return "", fmt.Errorf("trace %s not in store", hash)
		}
		return path, nil
	})
	defer SetCorpusResolver(nil)
	src, err := r.New("corpus:"+corpusTestHash, WorkloadParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.(*tracefile.Reader).Close()
	if op := src.NextOp(nil); len(op) != 1 || op[0].Page != 9 {
		t.Fatalf("corpus replay op = %v", op)
	}
	if _, err := r.New("corpus:"+strings.Repeat("ee", 32), WorkloadParams{Seed: 1}); err == nil {
		t.Fatal("unknown hash resolved")
	}
}
