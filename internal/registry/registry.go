// Package registry holds the process-wide policy and workload registries
// the public facade exposes. It is a leaf package so that policy packages
// (internal/core, internal/baselines) and workload packages can register
// their named constructors from init functions without importing the
// facade, and the facade, the experiment harness, and the CLIs can all
// resolve names through one authoritative table instead of hand-maintained
// switch statements.
//
// Besides registered names, workload resolution understands three extra
// forms. "trace:<path>" opens a recorded trace file (internal/tracefile)
// as the workload, so captured or externally produced access streams run
// everywhere a workload name is accepted — experiments, sweeps, CLIs.
// "corpus:<sha256>" opens a trace out of a content-addressed corpus
// (internal/corpus) through a process-installed resolver, naming the
// trace's bytes rather than a mutable path. And the composition grammar (grammar.go, docs/COMPOSITION.md) builds
// multi-tenant scenarios out of the registered generators with the
// combinators in internal/trace: "mix:0.7*cdn,0.3*silo" interleaves two
// tenants on disjoint page ranges, "phases:cdn@1000000,silo" switches
// generators after a fixed op count, and repeat:/offset:/scale: loop and
// transform address spaces. Specs nest with parentheses and resolve
// everywhere a plain name does.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mem"
	"repro/internal/tier"
	"repro/internal/trace"
	"repro/internal/tracefile"
)

// PolicyFactory builds one policy instance for a page space of numPages
// with a fast tier of fastPages, returning the policy and the first-touch
// allocation mode the paper's methodology (§5.2) prescribes for it. huge
// selects 2 MB-granularity configurations (§4.4).
type PolicyFactory func(numPages, fastPages int, huge bool) (tier.Policy, mem.AllocMode, error)

// PolicyEntry is one registered tiering system.
type PolicyEntry struct {
	// Name is the registry key ("HybridTier", "Memtis", ...).
	Name string
	// Doc is a one-line description shown by CLI listings.
	Doc string
	// New constructs an instance.
	New PolicyFactory
	// Tracker names the access tracker (internal/tracker kind) the policy
	// is designed against; empty means the default PEBS sampler. Callers
	// may override it per cell with a "Name@tracker" qualifier or a
	// spec-level tracker choice.
	Tracker string
}

// PolicyQualifierSep separates a policy name from a tracker qualifier in
// the "Name@tracker" spelling ("LRU@idlepage") accepted by sweep specs
// and CLIs.
const PolicyQualifierSep = "@"

// SplitPolicyQualifier splits "LRU@idlepage" into ("LRU", "idlepage",
// true); bare names return (name, "", false). Only the first separator
// binds. Validating the tracker name is the caller's job — the registry
// stays a leaf package and does not import internal/tracker.
func SplitPolicyQualifier(name string) (policy, tracker string, qualified bool) {
	if i := strings.Index(name, PolicyQualifierSep); i >= 0 {
		return name[:i], name[i+1:], true
	}
	return name, "", false
}

// PolicyRegistry maps policy names to constructors. The zero value is not
// usable; call NewPolicyRegistry. All methods are safe for concurrent use.
type PolicyRegistry struct {
	mu      sync.RWMutex
	entries map[string]PolicyEntry
}

// NewPolicyRegistry returns an empty registry.
func NewPolicyRegistry() *PolicyRegistry {
	return &PolicyRegistry{entries: map[string]PolicyEntry{}}
}

// Register adds an entry. Empty names and duplicates are errors.
func (r *PolicyRegistry) Register(e PolicyEntry) error {
	if e.Name == "" || e.New == nil {
		return fmt.Errorf("registry: policy entry needs a name and a constructor")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.Name]; dup {
		return fmt.Errorf("registry: policy %q registered twice", e.Name)
	}
	r.entries[e.Name] = e
	return nil
}

// MustRegister is Register, panicking on error; for init-time use.
func (r *PolicyRegistry) MustRegister(e PolicyEntry) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Lookup finds an entry by name.
func (r *PolicyRegistry) Lookup(name string) (PolicyEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// New constructs the named policy, or an error naming the known policies
// when the name is not registered.
func (r *PolicyRegistry) New(name string, numPages, fastPages int, huge bool) (tier.Policy, mem.AllocMode, error) {
	e, ok := r.Lookup(name)
	if !ok {
		return nil, 0, fmt.Errorf("registry: unknown policy %q (known: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return e.New(numPages, fastPages, huge)
}

// Names returns every registered policy name, sorted.
func (r *PolicyRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WorkloadParams sizes a workload instance. Factories read the fields that
// apply to them and fall back to their package defaults on zero values, so
// a zero WorkloadParams (plus a seed) always produces a working instance.
type WorkloadParams struct {
	// Seed makes the instance deterministic.
	Seed uint64

	// Pages and Skew size the synthetic Zipf sources.
	Pages int
	Skew  float64

	// CacheObjects is the CacheLib base object count ("social" scales it).
	CacheObjects int

	// GraphScale and GraphDegree size the GAP input graphs (2^scale
	// vertices, degree*2^scale edges).
	GraphScale  int
	GraphDegree int

	// Cells is the SPEC CPU base cell count ("roms" scales it).
	Cells int

	// Records is the Silo B+tree record count.
	Records int

	// Rows and Features size the XGBoost training matrix.
	Rows     int
	Features int
}

// WorkloadFactory builds one workload instance from params.
type WorkloadFactory func(p WorkloadParams) (trace.Source, error)

// WorkloadEntry is one registered workload generator.
type WorkloadEntry struct {
	// Name is the registry key ("cdn", "bfs-kron", ...).
	Name string
	// Doc is a one-line description shown by CLI listings.
	Doc string
	// New constructs an instance.
	New WorkloadFactory
}

// WorkloadRegistry maps workload names to constructors. The zero value is
// not usable; call NewWorkloadRegistry. All methods are safe for
// concurrent use.
type WorkloadRegistry struct {
	mu      sync.RWMutex
	entries map[string]WorkloadEntry
}

// NewWorkloadRegistry returns an empty registry.
func NewWorkloadRegistry() *WorkloadRegistry {
	return &WorkloadRegistry{entries: map[string]WorkloadEntry{}}
}

// Register adds an entry. Empty names and duplicates are errors.
func (r *WorkloadRegistry) Register(e WorkloadEntry) error {
	if e.Name == "" || e.New == nil {
		return fmt.Errorf("registry: workload entry needs a name and a constructor")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.Name]; dup {
		return fmt.Errorf("registry: workload %q registered twice", e.Name)
	}
	r.entries[e.Name] = e
	return nil
}

// MustRegister is Register, panicking on error; for init-time use.
func (r *WorkloadRegistry) MustRegister(e WorkloadEntry) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Lookup finds an entry by name.
func (r *WorkloadRegistry) Lookup(name string) (WorkloadEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// TraceScheme prefixes workload names that resolve to recorded trace
// files instead of registered generators: "trace:/path/to/run.htrc".
const TraceScheme = "trace:"

// CorpusScheme prefixes workload names that resolve through a
// content-addressed trace corpus (internal/corpus): "corpus:<sha256>".
// Unlike trace:<path>, the hash names the trace BYTES, not a mutable
// file, so corpus workloads are sound inputs for content-addressed
// result caching and the experiment service accepts them where it
// rejects trace paths.
const CorpusScheme = "corpus:"

// corpusHashLen is the length of a corpus address: lowercase hex SHA-256.
const corpusHashLen = 64

// isCorpusHash reports whether s is a well-formed corpus trace address.
// Kept inline (rather than importing internal/corpus) so the registry
// stays a leaf package.
func isCorpusHash(s string) bool {
	if len(s) != corpusHashLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// corpusResolver maps a corpus hash to a local trace file path. It is
// process-global, like the registries themselves: the daemon installs its
// store's lookup at startup, and every resolution path (experiments,
// sweeps, composed specs) reaches it through the same table.
var (
	corpusMu      sync.RWMutex
	corpusResolve func(hash string) (string, error)
)

// SetCorpusResolver installs fn as the process-wide corpus: resolver.
// Passing nil uninstalls it, after which corpus workloads fail to build
// with a descriptive error.
func SetCorpusResolver(fn func(hash string) (string, error)) {
	corpusMu.Lock()
	corpusResolve = fn
	corpusMu.Unlock()
}

// ResolveCorpus maps a corpus hash to the trace file path backing it,
// through the installed resolver.
func ResolveCorpus(hash string) (string, error) {
	if !isCorpusHash(hash) {
		return "", fmt.Errorf("registry: corpus hash %q is not a lowercase hex sha256", hash)
	}
	corpusMu.RLock()
	fn := corpusResolve
	corpusMu.RUnlock()
	if fn == nil {
		return "", fmt.Errorf("registry: no corpus store in this process (corpus: workloads resolve inside the daemon; use trace:<path> locally)")
	}
	return fn(hash)
}

// New constructs the named workload. Composition specs (grammar.go —
// "mix:", "phases:", "repeat:", "offset:", "scale:", or a parenthesized
// spec) are parsed and built recursively, with every tenant seeded from a
// splitmix64 derivation of p.Seed so same-generator tenants draw distinct
// streams. Names starting with TraceScheme open the trace file after the
// prefix (WorkloadParams do not apply: the trace header fixes the page
// space and the recorded stream is literal); names starting with
// CorpusScheme do the same after mapping the content hash to a stored
// trace through the installed resolver (SetCorpusResolver). Other names
// resolve through the registered entries, with an error naming the known
// workloads when the name is not registered.
func (r *WorkloadRegistry) New(name string, p WorkloadParams) (trace.Source, error) {
	if isCompositeSpec(name) {
		return r.newComposite(name, p)
	}
	if path, ok := strings.CutPrefix(name, TraceScheme); ok {
		if path == "" {
			return nil, fmt.Errorf("registry: %q needs a path after the scheme", name)
		}
		src, err := tracefile.Open(path)
		if err != nil {
			return nil, fmt.Errorf("registry: workload %q: %w", name, err)
		}
		return src, nil
	}
	if hash, ok := strings.CutPrefix(name, CorpusScheme); ok {
		path, err := ResolveCorpus(hash)
		if err != nil {
			return nil, fmt.Errorf("registry: workload %q: %w", name, err)
		}
		src, err := tracefile.Open(path)
		if err != nil {
			return nil, fmt.Errorf("registry: workload %q: %w", name, err)
		}
		return src, nil
	}
	e, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown workload %q (known: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return e.New(p)
}

// Names returns every registered workload name, sorted.
func (r *WorkloadRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Policies is the process-wide policy registry. internal/core and
// internal/baselines self-register into it from init.
var Policies = NewPolicyRegistry()

// Workloads is the process-wide workload registry. The workload packages
// self-register into it from init.
var Workloads = NewWorkloadRegistry()
