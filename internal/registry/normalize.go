package registry

// Spec normalization: one canonical string per composition tree, so
// textually different spellings of the same workload ("mix:cdn,silo",
// "mix: 1*cdn , 1*silo", "(mix:cdn,silo)") hash to the same
// content-addressed result in the experiment service. The canonical form
// is defined by renderNode: explicit weights, no whitespace, composite
// children parenthesized, leaf children bare — and it always re-parses to
// the same tree (TestNormalizeRoundTrip holds us to it).

import (
	"fmt"
	"strconv"
	"strings"
)

// Normalize parses name — a plain workload name, a trace:<path>, or a
// composition spec — validates every referenced generator, and returns
// the canonical spelling: whitespace stripped, mix weights explicit,
// nested combinators parenthesized exactly once. Two specs normalize to
// the same string iff they describe the same composition tree, which is
// what makes the string a sound input for content-addressed hashing
// (docs/SERVICE.md). Errors are the same ones Validate reports.
func (r *WorkloadRegistry) Normalize(name string) (string, error) {
	node, err := parseSpec(name, 0)
	if err != nil {
		return "", fmt.Errorf("registry: workload %q: %w", name, err)
	}
	if err := r.validateNode(node); err != nil {
		return "", fmt.Errorf("registry: workload %q: %w", name, err)
	}
	return renderNode(node), nil
}

// renderNode renders a parsed spec tree in canonical form. It is the
// inverse of parseSpec up to normalization: parse(render(t)) == t.
func renderNode(n specNode) string {
	switch n := n.(type) {
	case leafNode:
		return n.name
	case mixNode:
		parts := make([]string, len(n.parts))
		for i, c := range n.parts {
			parts[i] = strconv.FormatFloat(n.weights[i], 'g', -1, 64) + "*" + renderAtom(c)
		}
		return "mix:" + strings.Join(parts, ",")
	case phasesNode:
		stages := make([]string, len(n.stages))
		for i, c := range n.stages {
			stages[i] = renderAtom(c)
			if n.ops[i] != 0 {
				stages[i] += "@" + strconv.FormatInt(n.ops[i], 10)
			}
		}
		return "phases:" + strings.Join(stages, ",")
	case repeatNode:
		return "repeat:" + renderAtom(n.child) + "@" + strconv.FormatInt(n.ops, 10)
	case offsetNode:
		return "offset:" + renderAtom(n.child) + "+" + strconv.FormatInt(n.pages, 10)
	case scaleNode:
		return "scale:" + renderAtom(n.child) + "*" + strconv.FormatInt(n.factor, 10)
	default:
		// parseSpec produces only the six node kinds above; a new kind
		// must extend this switch before it can parse.
		panic("registry: unhandled spec node in renderNode")
	}
}

// renderAtom renders a child position: leaves are bare, composite
// children get the parentheses the grammar requires of nested combinators.
func renderAtom(n specNode) string {
	if l, ok := n.(leafNode); ok {
		return l.name
	}
	return "(" + renderNode(n) + ")"
}

// HasTraceWorkload reports whether name — after parsing the composition
// grammar — references a trace:<path> replay anywhere in its tree. The
// experiment service refuses such specs: its result cache is addressed
// by the spec's hash, which covers the PATH string but not the trace
// file's bytes, so a replaced trace would serve stale results as fresh.
// Parse errors are reported like Validate's.
func (r *WorkloadRegistry) HasTraceWorkload(name string) (bool, error) {
	node, err := parseSpec(name, 0)
	if err != nil {
		return false, fmt.Errorf("registry: workload %q: %w", name, err)
	}
	return nodeHasTrace(node), nil
}

// CorpusHashes returns every corpus:<hash> referenced by name (after
// parsing the composition grammar), deduplicated in first-appearance
// order. The experiment service checks each against its store at submit
// time, so an unknown hash is a 400 instead of a cell-by-cell build
// failure mid-sweep. Parse errors are reported like Validate's.
func (r *WorkloadRegistry) CorpusHashes(name string) ([]string, error) {
	node, err := parseSpec(name, 0)
	if err != nil {
		return nil, fmt.Errorf("registry: workload %q: %w", name, err)
	}
	var out []string
	seen := map[string]bool{}
	collectCorpus(node, seen, &out)
	return out, nil
}

// collectCorpus walks a parsed spec for corpus: leaves.
func collectCorpus(n specNode, seen map[string]bool, out *[]string) {
	switch n := n.(type) {
	case leafNode:
		if hash, ok := strings.CutPrefix(n.name, CorpusScheme); ok && !seen[hash] {
			seen[hash] = true
			*out = append(*out, hash)
		}
	case mixNode:
		for _, c := range n.parts {
			collectCorpus(c, seen, out)
		}
	case phasesNode:
		for _, c := range n.stages {
			collectCorpus(c, seen, out)
		}
	case repeatNode:
		collectCorpus(n.child, seen, out)
	case offsetNode:
		collectCorpus(n.child, seen, out)
	case scaleNode:
		collectCorpus(n.child, seen, out)
	}
}

// nodeHasTrace walks a parsed spec for trace: leaves. corpus: leaves are
// deliberately NOT flagged: a content hash names its bytes, so the staleness
// hazard that bars trace paths from the result cache does not exist.
func nodeHasTrace(n specNode) bool {
	switch n := n.(type) {
	case leafNode:
		return strings.HasPrefix(n.name, TraceScheme)
	case mixNode:
		for _, c := range n.parts {
			if nodeHasTrace(c) {
				return true
			}
		}
	case phasesNode:
		for _, c := range n.stages {
			if nodeHasTrace(c) {
				return true
			}
		}
	case repeatNode:
		return nodeHasTrace(n.child)
	case offsetNode:
		return nodeHasTrace(n.child)
	case scaleNode:
		return nodeHasTrace(n.child)
	}
	return false
}
