package registry

// The workload composition grammar: a textual form of the combinators in
// internal/trace, so composed multi-tenant scenarios resolve anywhere a
// workload name is accepted — experiments, sweeps, CLIs, facade options.
//
// EBNF (the normative copy lives in docs/COMPOSITION.md):
//
//	spec    = mix | phases | repeat | offset | scale | atom ;
//	mix     = "mix:" part "," part { "," part } ;
//	part    = [ weight "*" ] atom ;
//	phases  = "phases:" stage { "," stage } "," atom ;   (* finite stages, then the final one *)
//	stage   = atom "@" ops ;
//	repeat  = "repeat:" atom "@" ops ;
//	offset  = "offset:" atom "+" pages ;
//	scale   = "scale:" atom "*" factor ;
//	atom    = "(" spec ")" | name ;
//	name    = (* a registered workload name, or "trace:" path *) ;
//
// Nested combinators must be parenthesized: mix:0.7*(phases:cdn@50000,silo),0.3*zipf.
// Weights are positive decimals (omitted = 1). All counts are decimal
// integers; ops and pages are bounded so a typo cannot demand a
// petabyte-scale run, and every parse failure is a descriptive error —
// malformed specs never panic (FuzzRegistryParse holds us to it).

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// Grammar bounds: generous for real scenarios, tight enough that a typo'd
// count fails at parse time instead of allocating the world.
const (
	maxSpecOps    = int64(1) << 40 // phase/repeat op counts
	maxSpecPages  = int64(1) << 40 // offset page counts (mirrors the trace-format bound)
	maxSpecFactor = int64(1) << 20 // scale factors
	maxSpecWeight = 1e9            // mix weights
	maxSpecDepth  = 32             // nesting depth, so hostile input cannot blow the stack
)

// specNode is one node of a parsed composition spec.
type specNode interface{ isSpec() }

type leafNode struct{ name string }

type mixNode struct {
	weights []float64
	parts   []specNode
}

type phasesNode struct {
	stages []specNode
	ops    []int64 // ops[i] > 0 for i < len-1; 0 for the final stage
}

type repeatNode struct {
	child specNode
	ops   int64
}

type offsetNode struct {
	child specNode
	pages int64
}

type scaleNode struct {
	child  specNode
	factor int64
}

func (leafNode) isSpec()   {}
func (mixNode) isSpec()    {}
func (phasesNode) isSpec() {}
func (repeatNode) isSpec() {}
func (offsetNode) isSpec() {}
func (scaleNode) isSpec()  {}

// isCompositeSpec reports whether name uses the composition grammar (a
// combinator scheme or a parenthesized spec) rather than a plain
// registered name or trace path.
func isCompositeSpec(name string) bool {
	for _, p := range []string{"mix:", "phases:", "repeat:", "offset:", "scale:", "("} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// splitTop splits s at top-level commas, respecting parenthesis nesting.
func splitTop(s string) ([]string, error) {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ')' at byte %d of %q", i, s)
			}
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced '(' in %q", s)
	}
	return append(out, s[start:]), nil
}

// cutTop splits s at the LAST top-level occurrence of sep, so counts bind
// rightmost: "trace:a@b@100" parses as atom "trace:a@b" with count 100.
func cutTop(s string, sep byte) (head, tail string, ok bool) {
	depth := 0
	at := -1
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				at = i
			}
		}
	}
	if at < 0 {
		return s, "", false
	}
	return s[:at], s[at+1:], true
}

// cutTopFirst splits s at the FIRST top-level occurrence of sep; mix
// weights bind leftmost so parenthesized atoms stay whole.
func cutTopFirst(s string, sep byte) (head, tail string, ok bool) {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				return s[:i], s[i+1:], true
			}
		}
	}
	return s, "", false
}

// parseSpec parses a composition spec (or plain name) into its node tree.
func parseSpec(s string, depth int) (specNode, error) {
	if depth > maxSpecDepth {
		return nil, fmt.Errorf("spec nests deeper than %d levels", maxSpecDepth)
	}
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "mix:"):
		return parseMix(s[len("mix:"):], depth)
	case strings.HasPrefix(s, "phases:"):
		return parsePhases(s[len("phases:"):], depth)
	case strings.HasPrefix(s, "repeat:"):
		return parseRepeat(s[len("repeat:"):], depth)
	case strings.HasPrefix(s, "offset:"):
		return parseOffset(s[len("offset:"):], depth)
	case strings.HasPrefix(s, "scale:"):
		return parseScale(s[len("scale:"):], depth)
	default:
		return parseAtom(s, depth)
	}
}

// parseAtom parses "( spec )" or a leaf name. Nested combinators must be
// parenthesized — the error says so, because the bare form is the most
// natural typo.
func parseAtom(s string, depth int) (specNode, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("empty workload name")
	}
	if s[0] == '(' {
		if s[len(s)-1] != ')' {
			return nil, fmt.Errorf("unbalanced parentheses in %q", s)
		}
		return parseSpec(s[1:len(s)-1], depth+1)
	}
	// Trace paths are opaque: they may legitimately contain '@', '+', or
	// '*' (counts bind to the RIGHTMOST top-level separator so such paths
	// still parse), though commas and parentheses in a path are split
	// before the atom is seen and cannot be escaped.
	if strings.HasPrefix(s, TraceScheme) || strings.HasPrefix(s, CorpusScheme) {
		return leafNode{name: s}, nil
	}
	if isCompositeSpec(s) {
		return nil, fmt.Errorf("nested combinators must be parenthesized: write (%s)", s)
	}
	if strings.ContainsAny(s, "(),*@+") {
		return nil, fmt.Errorf("workload name %q contains grammar metacharacters; registered names never do", s)
	}
	return leafNode{name: s}, nil
}

// parseCount parses a decimal op/page/factor count within [min, max].
func parseCount(s, what string, lo, hi int64) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q: %v", what, s, err)
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("%s %d outside [%d, %d]", what, v, lo, hi)
	}
	return v, nil
}

func parseMix(body string, depth int) (specNode, error) {
	parts, err := splitTop(body)
	if err != nil {
		return nil, err
	}
	if len(parts) < 2 {
		return nil, fmt.Errorf("mix needs at least two comma-separated tenants, got %d in %q", len(parts), body)
	}
	n := mixNode{}
	for _, p := range parts {
		w := 1.0
		atom := p
		if head, tail, ok := cutTopFirst(p, '*'); ok {
			w, err = strconv.ParseFloat(strings.TrimSpace(head), 64)
			if err != nil {
				return nil, fmt.Errorf("bad mix weight %q: %v", head, err)
			}
			if !(w > 0) || math.IsInf(w, 1) || w > maxSpecWeight {
				return nil, fmt.Errorf("mix weight %v outside (0, %g]", w, maxSpecWeight)
			}
			atom = tail
		}
		child, err := parseAtom(atom, depth)
		if err != nil {
			return nil, err
		}
		n.weights = append(n.weights, w)
		n.parts = append(n.parts, child)
	}
	return n, nil
}

func parsePhases(body string, depth int) (specNode, error) {
	stages, err := splitTop(body)
	if err != nil {
		return nil, err
	}
	if len(stages) < 2 {
		return nil, fmt.Errorf("phases need at least two comma-separated stages, got %d in %q", len(stages), body)
	}
	n := phasesNode{}
	for i, st := range stages {
		last := i == len(stages)-1
		head, tail, ok := cutTop(st, '@')
		ops := int64(0)
		atom := st
		if ok {
			if v, err := parseCount(tail, "phase op count", 1, maxSpecOps); err == nil {
				ops, atom = v, head
			} else if !last {
				return nil, err
			}
			// A final stage whose '@' suffix is not a count is taken as a
			// plain name (trace paths may contain '@'); a final stage WITH
			// a count is the one misuse worth a dedicated message.
		}
		if !last && ops == 0 {
			return nil, fmt.Errorf("phase stage %q needs an op count: write name@ops", strings.TrimSpace(st))
		}
		if last && ops != 0 {
			return nil, fmt.Errorf("the final phase runs until the simulation ends; drop %q", "@"+tail)
		}
		child, err := parseAtom(atom, depth)
		if err != nil {
			return nil, err
		}
		n.stages = append(n.stages, child)
		n.ops = append(n.ops, ops)
	}
	return n, nil
}

func parseRepeat(body string, depth int) (specNode, error) {
	head, tail, ok := cutTop(body, '@')
	if !ok {
		return nil, fmt.Errorf("repeat needs an op count: repeat:name@ops, got %q", body)
	}
	ops, err := parseCount(tail, "repeat op count", 1, maxSpecOps)
	if err != nil {
		return nil, err
	}
	child, err := parseAtom(head, depth)
	if err != nil {
		return nil, err
	}
	return repeatNode{child: child, ops: ops}, nil
}

func parseOffset(body string, depth int) (specNode, error) {
	head, tail, ok := cutTop(body, '+')
	if !ok {
		return nil, fmt.Errorf("offset needs a page count: offset:name+pages, got %q", body)
	}
	pages, err := parseCount(tail, "offset page count", 0, maxSpecPages)
	if err != nil {
		return nil, err
	}
	child, err := parseAtom(head, depth)
	if err != nil {
		return nil, err
	}
	return offsetNode{child: child, pages: pages}, nil
}

func parseScale(body string, depth int) (specNode, error) {
	head, tail, ok := cutTop(body, '*')
	if !ok {
		return nil, fmt.Errorf("scale needs a factor: scale:name*factor, got %q", body)
	}
	factor, err := parseCount(tail, "scale factor", 1, maxSpecFactor)
	if err != nil {
		return nil, err
	}
	child, err := parseAtom(head, depth)
	if err != nil {
		return nil, err
	}
	return scaleNode{child: child, factor: factor}, nil
}

// validateNode checks every leaf against the registry without building
// anything (trace: leaves only need a path; the file is opened at build).
func (r *WorkloadRegistry) validateNode(n specNode) error {
	switch n := n.(type) {
	case leafNode:
		if path, ok := strings.CutPrefix(n.name, TraceScheme); ok {
			if path == "" {
				return fmt.Errorf("%q needs a path after the scheme", n.name)
			}
			return nil
		}
		if hash, ok := strings.CutPrefix(n.name, CorpusScheme); ok {
			if !isCorpusHash(hash) {
				return fmt.Errorf("%q needs a lowercase hex sha256 after the scheme", n.name)
			}
			// Shape only: whether the hash is actually in a store is a
			// build-time question (the resolver may live in another process).
			return nil
		}
		if _, ok := r.Lookup(n.name); !ok {
			return fmt.Errorf("unknown workload %q (known: %s)", n.name, strings.Join(r.Names(), ", "))
		}
		return nil
	case mixNode:
		for _, c := range n.parts {
			if err := r.validateNode(c); err != nil {
				return err
			}
		}
		return nil
	case phasesNode:
		for _, c := range n.stages {
			if err := r.validateNode(c); err != nil {
				return err
			}
		}
		return nil
	case repeatNode:
		return r.validateNode(n.child)
	case offsetNode:
		return r.validateNode(n.child)
	case scaleNode:
		return r.validateNode(n.child)
	default:
		return fmt.Errorf("registry: unhandled spec node %T", n)
	}
}

// Validate reports whether name would resolve: it parses composition
// grammar and checks every referenced generator against the registry,
// without constructing anything or touching the filesystem. CLIs use it
// to reject a bad -workload before any simulation starts.
func (r *WorkloadRegistry) Validate(name string) error {
	node, err := parseSpec(name, 0)
	if err != nil {
		return fmt.Errorf("registry: workload %q: %w", name, err)
	}
	if err := r.validateNode(node); err != nil {
		return fmt.Errorf("registry: workload %q: %w", name, err)
	}
	return nil
}

// childSeed derives tenant i's seed from the run seed by splitmix64, so
// composed tenants of the same base workload draw distinct streams while
// the whole composition stays a pure function of the run seed.
func childSeed(seed, i uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// closeSources releases any children already built when a later step of a
// composite build fails, so a half-built mix over trace replays does not
// leak file handles.
func closeSources(srcs []trace.Source) {
	for _, s := range srcs {
		if c, ok := s.(io.Closer); ok {
			c.Close()
		}
	}
}

// buildNode materializes a parsed spec. ctr numbers the leaves across the
// whole tree (depth-first), giving every tenant its own derived seed.
func (r *WorkloadRegistry) buildNode(n specNode, p WorkloadParams, ctr *uint64) (trace.Source, error) {
	switch n := n.(type) {
	case leafNode:
		cp := p
		cp.Seed = childSeed(p.Seed, *ctr)
		*ctr++
		return r.New(n.name, cp)
	case mixNode:
		parts := make([]trace.Weighted, 0, len(n.parts))
		srcs := make([]trace.Source, 0, len(n.parts))
		for i, c := range n.parts {
			src, err := r.buildNode(c, p, ctr)
			if err != nil {
				closeSources(srcs)
				return nil, err
			}
			srcs = append(srcs, src)
			parts = append(parts, trace.Weighted{Source: src, Weight: n.weights[i]})
		}
		m, err := trace.NewMix("", parts...)
		if err != nil {
			closeSources(srcs)
		}
		return m, err
	case phasesNode:
		stages := make([]trace.Stage, 0, len(n.stages))
		srcs := make([]trace.Source, 0, len(n.stages))
		for i, c := range n.stages {
			src, err := r.buildNode(c, p, ctr)
			if err != nil {
				closeSources(srcs)
				return nil, err
			}
			srcs = append(srcs, src)
			stages = append(stages, trace.Stage{Source: src, Ops: n.ops[i]})
		}
		ph, err := trace.NewPhases("", stages...)
		if err != nil {
			closeSources(srcs)
		}
		return ph, err
	case repeatNode:
		src, err := r.buildNode(n.child, p, ctr)
		if err != nil {
			return nil, err
		}
		rep, err := trace.NewRepeat("", src, n.ops)
		if err != nil {
			closeSources([]trace.Source{src})
		}
		return rep, err
	case offsetNode:
		src, err := r.buildNode(n.child, p, ctr)
		if err != nil {
			return nil, err
		}
		off, err := trace.NewOffset("", src, n.pages)
		if err != nil {
			closeSources([]trace.Source{src})
		}
		return off, err
	case scaleNode:
		src, err := r.buildNode(n.child, p, ctr)
		if err != nil {
			return nil, err
		}
		sc, err := trace.NewScale("", src, n.factor)
		if err != nil {
			closeSources([]trace.Source{src})
		}
		return sc, err
	default:
		return nil, fmt.Errorf("registry: unhandled spec node %T", n)
	}
}

// newComposite parses and builds a composition spec.
func (r *WorkloadRegistry) newComposite(name string, p WorkloadParams) (trace.Source, error) {
	node, err := parseSpec(name, 0)
	if err != nil {
		return nil, fmt.Errorf("registry: workload %q: %w", name, err)
	}
	ctr := uint64(0)
	src, err := r.buildNode(node, p, &ctr)
	if err != nil {
		return nil, fmt.Errorf("registry: workload %q: %w", name, err)
	}
	return src, nil
}

// SpecSyntax returns one line per composition scheme, for CLI listings —
// generated here so help output can never drift from what parses.
func SpecSyntax() []string {
	return []string{
		"mix:W*A,W*B,...    weighted round-robin interleave of tenants on disjoint page ranges (weight omitted = 1)",
		"phases:A@N,...,Z   run A for N ops, then the next stage; the final stage runs to the end",
		"repeat:A@N         capture A's first N ops, then loop them forever",
		"offset:A+N         shift A's pages up by N (page space grows by N)",
		"scale:A*K          stride A's pages by K (page space grows K-fold)",
		"(...)              parenthesize nested combinators: mix:0.7*(phases:cdn@50000,silo),0.3*zipf",
	}
}
