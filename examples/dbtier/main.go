// Database demo: a YCSB-C key-value workload over the Silo-style B+tree
// engine, plus the live Runtime — the policy running as a real background
// goroutine fed by sampled accesses, the deployment shape of the paper's
// userspace runtime thread (§4.1). The workload is resolved through the
// public workload registry, the same path Experiment and Sweep use.
//
//	go run ./examples/dbtier
package main

import (
	"fmt"
	"log"
	"time"

	hybridtier "repro"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/tier"
	"repro/internal/trace"
	"repro/internal/workloads/silo"
)

func main() {
	w, err := hybridtier.DefaultWorkloads().New("silo", hybridtier.WorkloadParams{
		Seed:    11,
		Records: 1 << 17, // 128 Ki records for a quick demo
	})
	if err != nil {
		log.Fatal(err)
	}
	db := w.(*silo.DB) // the live-runtime demo needs the engine's own API
	fmt.Printf("Silo B+tree: %d records, height %d, %d index pages, %d total pages\n",
		1<<17, db.Height(), db.IndexPages(), db.NumPages())

	// Tiered memory: fast tier holds 1/9 of the footprint; everything is
	// initially slow (cold start).
	fast := db.NumPages() / 9
	memory := mem.MustNew(mem.Config{
		NumPages:  db.NumPages(),
		FastPages: fast,
		PageBytes: mem.RegularPageBytes,
		Alloc:     mem.AllocSlow,
	})
	env := core.NewLiveEnv(memory)

	// HybridTier as a live background runtime.
	policy := core.MustNew(core.DefaultConfig(fast))
	rt := core.NewRuntime(policy, env, core.RuntimeConfig{
		BatchSamples: 256,
		TickEvery:    2 * time.Millisecond,
	})
	rt.Start()
	defer rt.Stop()

	// Drive YCSB-C operations, feeding every 13th access to the runtime
	// (PEBS-style sampling).
	const ops = 300_000
	var buf []trace.Access
	sampleCount := 0
	fastHits, total := 0, 0
	for i := 0; i < ops; i++ {
		buf = db.NextOp(buf[:0])
		for _, a := range buf {
			t, err := env.RecordAccess(a.Page)
			if err != nil {
				log.Fatal(err)
			}
			total++
			if t == mem.Fast {
				fastHits++
			}
			sampleCount++
			if sampleCount%13 == 0 {
				rt.Feed(tier.Sample{Page: a.Page, Tier: t, Write: a.Write})
			}
		}
		if i == ops/10 || i == ops-1 {
			fmt.Printf("after %6d ops: fast-tier hit rate %.1f%%, fast used %d/%d pages\n",
				i+1, 100*float64(fastHits)/float64(total), env.FastUsed(), fast)
		}
	}
	// Give the runtime a moment to drain, then report.
	time.Sleep(20 * time.Millisecond)
	fed, dropped := rt.Stats()
	fmt.Printf("runtime: %d samples accepted, %d dropped, %.1f ms tiering work\n",
		fed, dropped, env.BusyNs()/1e6)
	reads, updates := db.Counts()
	fmt.Printf("db: %d reads, %d updates\n", reads, updates)
}
