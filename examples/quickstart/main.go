// Quickstart: simulate HybridTier against a workload whose hot set shifts
// mid-run — the scenario the paper targets — and compare it with a static
// first-touch placement, using only the public hybridtier facade. The two
// policies run concurrently as one Sweep over the identical op stream.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	hybridtier "repro"
)

func main() {
	const (
		pages = 1 << 16 // 256 MB of 4 KB pages
		ops   = 600_000
	)

	// A skewed workload where 2/3 of the hot set rotates one third of the
	// way through the run (§2.2: production hot sets churn within minutes).
	// A workload factory gives every sweep cell its own instance.
	sw := &hybridtier.Sweep{
		Policies: []hybridtier.PolicyName{
			hybridtier.PolicyHybridTier,
			hybridtier.PolicyFirstTouch,
		},
		Seeds: []uint64{42},
		Base: []hybridtier.Option{
			hybridtier.WithWorkloadFunc(func(seed uint64) (hybridtier.Workload, error) {
				return hybridtier.ShiftingZipf("quickstart", pages, 1.0, seed, ops/3, 2.0/3.0), nil
			}),
			hybridtier.WithRatio(8), // fast tier holds 1/9 of the footprint
			hybridtier.WithOps(ops),
		},
	}
	cells, err := sw.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	byPolicy := map[hybridtier.PolicyName]*hybridtier.Result{}
	fmt.Println("policy       p50(ns)  mean(ns)  Mop/s  promotions  demotions")
	for _, c := range cells {
		if c.Err != "" {
			log.Fatalf("%s: %s", c.Policy, c.Err)
		}
		r := c.Result
		byPolicy[c.Policy] = r
		fmt.Printf("%-11s  %7d  %8.0f  %5.2f  %10d  %9d\n",
			r.Policy, r.MedianLatNs, r.MeanLatNs, r.ThroughputMops,
			r.Mem.Promotions, r.Mem.Demotions)
	}

	ht := byPolicy[hybridtier.PolicyHybridTier]
	st := byPolicy[hybridtier.PolicyFirstTouch]
	fmt.Printf("\nHybridTier mean-latency speedup over first-touch: %.2f×\n",
		st.MeanLatNs/ht.MeanLatNs)
	if adapt, ok := ht.AdaptationNs(10, 0.05); ok {
		fmt.Printf("HybridTier re-converged %.1f virtual ms after the shift\n",
			float64(adapt)/1e6)
	}
}
