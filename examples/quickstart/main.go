// Quickstart: simulate HybridTier against a workload whose hot set shifts
// mid-run — the scenario the paper targets — and compare it with a static
// first-touch placement, using only the public hybridtier facade.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hybridtier "repro"
)

func main() {
	const (
		pages = 1 << 16 // 256 MB of 4 KB pages
		ops   = 600_000
	)

	// A skewed workload where 2/3 of the hot set rotates one third of the
	// way through the run (§2.2: production hot sets churn within minutes).
	run := func(policy hybridtier.PolicyName) *hybridtier.Result {
		w := hybridtier.ShiftingZipf("quickstart", pages, 1.0, 42, ops/3, 2.0/3.0)
		res, err := hybridtier.Simulate(hybridtier.SimOptions{
			Workload:  w,
			Policy:    policy,
			FastRatio: 8, // fast tier holds 1/9 of the footprint
			Ops:       ops,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	ht := run(hybridtier.PolicyHybridTier)
	st := run(hybridtier.PolicyFirstTouch)

	fmt.Println("policy       p50(ns)  mean(ns)  Mop/s  promotions  demotions")
	for _, r := range []*hybridtier.Result{ht, st} {
		fmt.Printf("%-11s  %7d  %8.0f  %5.2f  %10d  %9d\n",
			r.Policy, r.MedianLatNs, r.MeanLatNs, r.ThroughputMops,
			r.Mem.Promotions, r.Mem.Demotions)
	}
	fmt.Printf("\nHybridTier mean-latency speedup over first-touch: %.2f×\n",
		st.MeanLatNs/ht.MeanLatNs)
	if adapt, ok := ht.AdaptationNs(10, 0.05); ok {
		fmt.Printf("HybridTier re-converged %.1f virtual ms after the shift\n",
			float64(adapt)/1e6)
	}
}
