// Graph-analytics demo: run the GAP BFS kernel over a Kronecker graph under
// tiered memory. BFS restarts from a new source every traversal, so its hot
// set keeps moving — the workload where the paper reports HybridTier's
// largest speedups (§6.1).
//
//	go run ./examples/graphtier
package main

import (
	"fmt"
	"log"

	hybridtier "repro"
	"repro/internal/sim"
	"repro/internal/workloads/gap"
)

func main() {
	const (
		scale  = 14 // 16 Ki vertices
		degree = 8
		ops    = 800_000
	)

	// One graph, shared by every policy run.
	graph := gap.Kronecker(scale, degree, 3)
	fmt.Printf("Kronecker graph: 2^%d vertices, %d edges\n\n", scale, graph.NumEdges())
	fmt.Println("policy      ratio  mean(ns)  Mop/s  trials")

	for _, ratio := range []int{16, 8} {
		for _, pol := range []hybridtier.PolicyName{
			hybridtier.PolicyTPP,
			hybridtier.PolicyHybridTier,
		} {
			src := gap.NewSourceFromGraph(gap.BFS, graph, "bfs-kron", 3)
			fast := src.NumPages() / (ratio + 1)
			p, alloc, err := hybridtier.NewPolicy(pol, src.NumPages(), fast, false)
			if err != nil {
				log.Fatal(err)
			}
			cfg := sim.DefaultConfig(src, p, fast)
			cfg.Ops = ops
			cfg.Alloc = alloc
			res, err := sim.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s  1:%-3d  %8.0f  %5.2f  %d\n",
				res.Policy, ratio, res.MeanLatNs, res.ThroughputMops, src.Trials())
		}
	}
}
