// Graph-analytics demo: run the GAP BFS kernel over a Kronecker graph under
// tiered memory. BFS restarts from a new source every traversal, so its hot
// set keeps moving — the workload where the paper reports HybridTier's
// largest speedups (§6.1). The policy × ratio grid runs as one concurrent
// Sweep; the registry-built "bfs-kron" cells share one cached graph build.
//
//	go run ./examples/graphtier
package main

import (
	"context"
	"fmt"
	"log"

	hybridtier "repro"
	"repro/internal/workloads/gap"
)

func main() {
	const (
		scale  = 14 // 16 Ki vertices
		degree = 8
		ops    = 800_000
	)

	sw := &hybridtier.Sweep{
		Policies: []hybridtier.PolicyName{
			hybridtier.PolicyTPP,
			hybridtier.PolicyHybridTier,
		},
		Ratios: []int{16, 8},
		Seeds:  []uint64{3},
		Base: []hybridtier.Option{
			hybridtier.WithWorkloadName("bfs-kron"),
			hybridtier.WithWorkloadParams(hybridtier.WorkloadParams{
				GraphScale:  scale,
				GraphDegree: degree,
			}),
			hybridtier.WithOps(ops),
		},
	}
	cells, err := sw.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// The registry cells built their sources over this same shared graph.
	graph := gap.SharedGraph(gap.Kron, scale, degree, 3)
	fmt.Printf("Kronecker graph: 2^%d vertices, %d edges\n\n", scale, graph.NumEdges())
	fmt.Println("policy      ratio  mean(ns)  Mop/s")
	for _, c := range cells {
		if c.Err != "" {
			log.Fatalf("%s 1:%d: %s", c.Policy, c.Ratio, c.Err)
		}
		fmt.Printf("%-10s  1:%-3d  %8.0f  %5.2f\n",
			c.Result.Policy, c.Ratio, c.Result.MeanLatNs, c.Result.ThroughputMops)
	}
}
