// CacheLib adaptation demo: reproduce the paper's headline scenario (Fig. 4)
// at laptop scale — an in-memory cache whose popularity distribution shifts
// mid-run, compared across AutoNUMA, Memtis, and HybridTier. All three
// policies run concurrently as one Sweep; each cell builds its own workload
// instance from the shared factory, so every policy sees the identical
// op stream.
//
//	go run ./examples/cachelib
package main

import (
	"context"
	"fmt"
	"log"

	hybridtier "repro"
	"repro/internal/workloads/cachelib"
)

func main() {
	const ops = 1_500_000

	sw := &hybridtier.Sweep{
		Policies: []hybridtier.PolicyName{
			hybridtier.PolicyAutoNUMA,
			hybridtier.PolicyMemtis,
			hybridtier.PolicyHybridTier,
		},
		Seeds: []uint64{7},
		Base: []hybridtier.Option{
			hybridtier.WithWorkloadFunc(func(seed uint64) (hybridtier.Workload, error) {
				cfg := cachelib.CDN(seed)
				cfg.Objects = 8_000
				cfg.ChurnEveryOps = 0
				cfg.ShiftAfterOps = ops / 3
				cfg.ShiftFrac = 2.0 / 3.0
				return cachelib.New(cfg)
			}),
			hybridtier.WithRatio(8),
			hybridtier.WithOps(ops),
			// Adaptation measurement needs finer latency windows than the
			// default 100 ms to resolve the re-convergence point.
			hybridtier.WithWindowNs(5_000_000),
		},
	}
	cells, err := sw.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CacheLib CDN, 1:8 fast:slow, popularity shift at 1/3 of the run")
	fmt.Println()
	fmt.Println("policy      p50(ns)  mean(ns)  promoted  demoted  adapt(ms)")
	for _, c := range cells {
		if c.Err != "" {
			log.Fatalf("%s: %s", c.Policy, c.Err)
		}
		res := c.Result
		adapt := "n/a"
		if ns, ok := res.AdaptationNs(10, 0.05); ok {
			adapt = fmt.Sprintf("%.1f", float64(ns)/1e6)
		}
		fmt.Printf("%-10s  %7d  %8.0f  %8d  %7d  %s\n",
			res.Policy, res.MedianLatNs, res.MeanLatNs,
			res.Mem.Promotions, res.Mem.Demotions, adapt)
	}
}
