// CacheLib adaptation demo: reproduce the paper's headline scenario (Fig. 4)
// at laptop scale — an in-memory cache whose popularity distribution shifts
// mid-run, compared across AutoNUMA, Memtis, and HybridTier.
//
//	go run ./examples/cachelib
package main

import (
	"fmt"
	"log"

	hybridtier "repro"
	"repro/internal/sim"
	"repro/internal/workloads/cachelib"
)

func main() {
	const ops = 1_500_000

	policies := []hybridtier.PolicyName{
		hybridtier.PolicyAutoNUMA,
		hybridtier.PolicyMemtis,
		hybridtier.PolicyHybridTier,
	}

	fmt.Println("CacheLib CDN, 1:8 fast:slow, popularity shift at 1/3 of the run")
	fmt.Println()
	fmt.Println("policy      p50(ns)  mean(ns)  promoted  demoted  adapt(ms)")

	for _, pol := range policies {
		// Fresh workload per policy: identical op stream, shared seed.
		cfg := cachelib.CDN(7)
		cfg.Objects = 8_000
		cfg.ChurnEveryOps = 0
		cfg.ShiftAfterOps = ops / 3
		cfg.ShiftFrac = 2.0 / 3.0
		w, err := cachelib.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := mustRun(w, pol, ops)
		adapt := "n/a"
		if ns, ok := res.AdaptationNs(10, 0.05); ok {
			adapt = fmt.Sprintf("%.1f", float64(ns)/1e6)
		}
		fmt.Printf("%-10s  %7d  %8.0f  %8d  %7d  %s\n",
			res.Policy, res.MedianLatNs, res.MeanLatNs,
			res.Mem.Promotions, res.Mem.Demotions, adapt)
	}
}

func mustRun(w *cachelib.Cache, pol hybridtier.PolicyName, ops int64) *sim.Result {
	fast := w.NumPages() / 9
	p, alloc, err := hybridtier.NewPolicy(pol, w.NumPages(), fast, false)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultConfig(w, p, fast)
	cfg.Ops = ops
	cfg.Alloc = alloc
	cfg.WindowNs = 5_000_000
	cfg.Seed = 7
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
