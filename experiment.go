package hybridtier

import (
	"context"
	"fmt"

	"repro/internal/mem"
	"repro/internal/registry"
	"repro/internal/sim"
)

// Experiment is one configured simulation: a workload, a policy, and a
// capacity split. Build it with NewExperiment and functional options, then
// execute it with Run. An Experiment is immutable after construction and
// cheap to copy; Sweep stamps many cells out of one option set.
type Experiment struct {
	policy   PolicyName
	workload Workload
	wname    string
	wfunc    func(seed uint64) (Workload, error)
	params   WorkloadParams
	ratio    int
	ops      int64
	huge     bool
	cache    bool
	seed     uint64
	windowNs int64
	progress func(done, total int64)
}

// Option configures an Experiment.
type Option func(*Experiment)

// WithPolicy selects the tiering system by registry name
// (default PolicyHybridTier).
func WithPolicy(name PolicyName) Option {
	return func(e *Experiment) { e.policy = name }
}

// WithWorkload supplies a concrete workload instance. Workload sources are
// stateful and not safe for concurrent use, so sweeps reject this option;
// use WithWorkloadName or WithWorkloadFunc there.
func WithWorkload(w Workload) Option {
	return func(e *Experiment) { e.workload = w }
}

// WithWorkloadName resolves the workload through the workload registry at
// Run time, sized by WithWorkloadParams and seeded per run — the form
// Sweep needs to build an independent instance per cell.
func WithWorkloadName(name string) Option {
	return func(e *Experiment) { e.wname = name }
}

// WithWorkloadFunc supplies a workload factory invoked with the run's seed,
// for workloads that need configuration beyond WorkloadParams.
func WithWorkloadFunc(fn func(seed uint64) (Workload, error)) Option {
	return func(e *Experiment) { e.wfunc = fn }
}

// WithWorkloadParams sizes a WithWorkloadName workload. The Seed field is
// overridden by the run's seed.
func WithWorkloadParams(p WorkloadParams) Option {
	return func(e *Experiment) { e.params = p }
}

// WithRatio sets N in a 1:N fast:slow capacity split (default 8).
func WithRatio(n int) Option {
	return func(e *Experiment) { e.ratio = n }
}

// WithOps sets the number of operations to simulate (default 1,000,000).
func WithOps(n int64) Option {
	return func(e *Experiment) { e.ops = n }
}

// WithHugePages switches to 2 MB tracking/migration granularity (§4.4).
func WithHugePages(on bool) Option {
	return func(e *Experiment) { e.huge = on }
}

// WithCacheModel enables the full application+tiering CPU-cache model used
// by the cache-overhead experiments (slower).
func WithCacheModel(on bool) Option {
	return func(e *Experiment) { e.cache = on }
}

// WithSeed makes the run deterministic (default 1). The seed drives both
// the workload instance and the simulator.
func WithSeed(s uint64) Option {
	return func(e *Experiment) { e.seed = s }
}

// WithWindowNs sets the latency time-series window (default 100 virtual
// ms); adaptation studies use finer windows to resolve re-convergence.
func WithWindowNs(ns int64) Option {
	return func(e *Experiment) { e.windowNs = ns }
}

// WithProgress installs a callback invoked from the simulation loop with
// (done, total) operation counts. It must be cheap and, under Sweep,
// concurrency-safe: cells running in parallel share it.
func WithProgress(fn func(done, total int64)) Option {
	return func(e *Experiment) { e.progress = fn }
}

// NewExperiment builds an experiment from options. Unset or zero-valued
// knobs fall back to the same defaults Simulate used: HybridTier at a 1:8
// split, one million ops, seed 1.
func NewExperiment(opts ...Option) *Experiment {
	e := &Experiment{policy: PolicyHybridTier}
	for _, o := range opts {
		o(e)
	}
	if e.policy == "" {
		e.policy = PolicyHybridTier
	}
	if e.ratio <= 0 {
		e.ratio = 8
	}
	if e.ops <= 0 {
		e.ops = 1_000_000
	}
	if e.seed == 0 {
		e.seed = 1
	}
	return e
}

// buildWorkload materializes the experiment's workload for one run.
func (e *Experiment) buildWorkload() (Workload, error) {
	switch {
	case e.workload != nil:
		return e.workload, nil
	case e.wfunc != nil:
		return e.wfunc(e.seed)
	case e.wname != "":
		p := e.params
		p.Seed = e.seed
		return registry.Workloads.New(e.wname, p)
	default:
		return nil, fmt.Errorf("hybridtier: experiment needs a workload " +
			"(WithWorkload, WithWorkloadName, or WithWorkloadFunc)")
	}
}

// Run executes the experiment. Cancelling ctx stops the simulation loop
// promptly; the returned error then wraps the context error (and exposes
// the completed op count via *sim.CanceledError).
func (e *Experiment) Run(ctx context.Context) (*Result, error) {
	w, err := e.buildWorkload()
	if err != nil {
		return nil, err
	}
	polPages, polFast := tierCapacity(w.NumPages(), e.ratio, e.huge)
	p, alloc, err := NewPolicy(e.policy, polPages, polFast, e.huge)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig(w, p, polFast)
	cfg.Ops = e.ops
	cfg.Alloc = alloc
	cfg.Seed = e.seed
	cfg.AppCacheModel = e.cache
	if e.huge {
		cfg.PageBytes = mem.HugePageBytes
	}
	if e.windowNs > 0 {
		cfg.WindowNs = e.windowNs
	}
	cfg.Ctx = ctx
	cfg.Progress = e.progress
	return sim.Run(cfg)
}
