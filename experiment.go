package hybridtier

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/mem"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/tracefile"
)

// Experiment is one configured simulation: a workload, a policy, and a
// capacity split. Build it with NewExperiment and functional options, then
// execute it with Run. An Experiment is immutable after construction and
// cheap to copy; Sweep stamps many cells out of one option set.
type Experiment struct {
	policy   PolicyName
	workload Workload
	wname    string
	wfunc    func(seed uint64) (Workload, error)
	params   WorkloadParams
	ratio    int
	ops      int64
	opsSet   bool
	huge     bool
	cache    bool
	seed     uint64
	tracker  string
	windowNs int64
	batchOps int
	pipeline bool
	recordTo string
	progress func(done, total int64)
	// scratch supplies reusable simulation buffers; Sweep workers set it
	// directly so cells on one worker recycle allocations.
	scratch *sim.Scratch
}

// Option configures an Experiment.
type Option func(*Experiment)

// WithPolicy selects the tiering system by registry name
// (default PolicyHybridTier).
func WithPolicy(name PolicyName) Option {
	return func(e *Experiment) { e.policy = name }
}

// WithWorkload supplies a concrete workload instance. Workload sources are
// stateful and not safe for concurrent use, so sweeps reject this option;
// use WithWorkloadName or WithWorkloadFunc there.
func WithWorkload(w Workload) Option {
	return func(e *Experiment) { e.workload = w }
}

// WithWorkloadName resolves the workload through the workload registry at
// Run time, sized by WithWorkloadParams and seeded per run — the form
// Sweep needs to build an independent instance per cell.
func WithWorkloadName(name string) Option {
	return func(e *Experiment) { e.wname = name }
}

// WithWorkloadFunc supplies a workload factory invoked with the run's seed,
// for workloads that need configuration beyond WorkloadParams.
func WithWorkloadFunc(fn func(seed uint64) (Workload, error)) Option {
	return func(e *Experiment) { e.wfunc = fn }
}

// WithWorkloadParams sizes a WithWorkloadName workload. The Seed field is
// overridden by the run's seed.
func WithWorkloadParams(p WorkloadParams) Option {
	return func(e *Experiment) { e.params = p }
}

// MixPart is one tenant of a WithMix composition.
type MixPart struct {
	// Weight is the tenant's relative share of operations; any positive
	// value works, shares are weight/sum(weights).
	Weight float64
	// Workload is the tenant's registry name — a plain generator, a
	// trace:<path> replay, or itself a composition spec.
	Workload string
}

// MixSpec renders parts as a composition spec ("mix:0.7*(cdn),0.3*(silo)",
// docs/COMPOSITION.md) accepted anywhere a workload name is: WithMix,
// Sweep bases, and the CLIs' -workload flag.
func MixSpec(parts ...MixPart) string {
	labels := make([]string, len(parts))
	for i, p := range parts {
		labels[i] = strconv.FormatFloat(p.Weight, 'g', -1, 64) + "*(" + p.Workload + ")"
	}
	return "mix:" + strings.Join(labels, ",")
}

// WithMix composes two or more tenants into the experiment's workload: a
// deterministic weighted round-robin interleave with each tenant remapped
// onto its own range of the combined page space, so tenants never alias.
// Tenants are seeded per run from the experiment's seed, so WithMix
// composes with Sweep like any named workload. Equivalent to
// WithWorkloadName(MixSpec(parts...)).
func WithMix(parts ...MixPart) Option {
	return func(e *Experiment) { e.wname = MixSpec(parts...) }
}

// Phase is one stage of a WithPhases composition.
type Phase struct {
	// Workload is the stage's registry name — a plain generator, a
	// trace:<path> replay, or itself a composition spec.
	Workload string
	// Ops is how many operations the stage runs before the next takes
	// over; it must be positive for every stage but the last and zero for
	// the last, which runs until the simulation ends.
	Ops int64
}

// PhasesSpec renders stages as a composition spec
// ("phases:(cdn)@1000000,(silo)", docs/COMPOSITION.md).
func PhasesSpec(stages ...Phase) string {
	labels := make([]string, len(stages))
	for i, s := range stages {
		labels[i] = "(" + s.Workload + ")"
		if i < len(stages)-1 || s.Ops != 0 {
			labels[i] += "@" + strconv.FormatInt(s.Ops, 10)
		}
	}
	return "phases:" + strings.Join(labels, ",")
}

// WithPhases composes stages that run back to back on an op-count
// schedule — the model of a phase-changing application. All stages share
// one address space (the largest stage's), so a later phase revisits
// pages an earlier one made hot. Equivalent to
// WithWorkloadName(PhasesSpec(stages...)).
func WithPhases(stages ...Phase) Option {
	return func(e *Experiment) { e.wname = PhasesSpec(stages...) }
}

// WithTraceFile replays a recorded trace (docs/TRACE_FORMAT.md) as the
// workload. The trace header supplies the workload name and page space,
// and the recorded op stream is replayed literally, so replaying a capture
// under the recorded policy/ratio/seed reproduces the live run's results
// byte for byte. Shorthand for WithWorkloadName("trace:" + path); sweeps
// open an independent reader per cell. When WithOps is unset the trace is
// scanned once up front to learn the recorded length (an extra decode
// pass a streaming format cannot avoid); pass WithOps to skip it.
func WithTraceFile(path string) Option {
	return func(e *Experiment) { e.wname = registry.TraceScheme + path }
}

// WithRecordTo captures the run's op stream to a trace file at path (gzip
// body framing when path ends in ".gz") while the simulation runs. The
// recording tee is non-intrusive — results are identical to an unrecorded
// run — and the file, once closed, replays via WithTraceFile. Multi-cell
// sweeps reject this option (concurrent cells cannot share one output
// file); a single-cell sweep records like a plain experiment.
func WithRecordTo(path string) Option {
	return func(e *Experiment) { e.recordTo = path }
}

// WithRatio sets N in a 1:N fast:slow capacity split (default 8).
func WithRatio(n int) Option {
	return func(e *Experiment) { e.ratio = n }
}

// WithOps sets the number of operations to simulate. When unset the
// default is 1,000,000 — except for trace-file workloads, which default
// to the recorded op count so a replay covers exactly the capture.
func WithOps(n int64) Option {
	return func(e *Experiment) { e.ops, e.opsSet = n, n > 0 }
}

// WithHugePages switches to 2 MB tracking/migration granularity (§4.4).
func WithHugePages(on bool) Option {
	return func(e *Experiment) { e.huge = on }
}

// WithCacheModel enables the full application+tiering CPU-cache model used
// by the cache-overhead experiments (slower).
func WithCacheModel(on bool) Option {
	return func(e *Experiment) { e.cache = on }
}

// WithSeed makes the run deterministic (default 1). The seed drives both
// the workload instance and the simulator.
func WithSeed(s uint64) Option {
	return func(e *Experiment) { e.seed = s }
}

// WithWindowNs sets the latency time-series window (default 100 virtual
// ms); adaptation studies use finer windows to resolve re-convergence.
func WithWindowNs(ns int64) Option {
	return func(e *Experiment) { e.windowNs = ns }
}

// WithProgress installs a callback invoked from the simulation loop with
// (done, total) operation counts. It must be cheap and, under Sweep,
// concurrency-safe: cells running in parallel share it.
func WithProgress(fn func(done, total int64)) Option {
	return func(e *Experiment) { e.progress = fn }
}

// WithBatchOps sets how many operations the simulator fetches from the
// workload per batch (default sim.DefaultBatchOps). It is purely a
// performance knob — results are identical for any value — and 1 forces
// the single-op fetch schedule, which the determinism tests compare
// against the batched default.
func WithBatchOps(n int) Option {
	return func(e *Experiment) { e.batchOps = n }
}

// WithPipeline overlaps workload generation with simulation on a second
// goroutine. Like WithBatchOps it is purely a performance knob: results
// stay byte-identical (the determinism tests pin this), because the
// pipeline only engages for workloads whose stream provably cannot depend
// on simulation timing (trace.ClockFree) and falls back to the inline
// fetch path everywhere else — shifting workloads, recording tees, and
// in-memory packed replays.
func WithPipeline(on bool) Option {
	return func(e *Experiment) { e.pipeline = on }
}

// NewExperiment builds an experiment from options. Unset or zero-valued
// knobs fall back to the same defaults Simulate used: HybridTier at a 1:8
// split, one million ops, seed 1.
func NewExperiment(opts ...Option) *Experiment {
	e := &Experiment{policy: PolicyHybridTier}
	for _, o := range opts {
		o(e)
	}
	if e.policy == "" {
		e.policy = PolicyHybridTier
	}
	if e.ratio <= 0 {
		e.ratio = 8
	}
	if e.ops <= 0 {
		e.ops = 1_000_000
	}
	if e.seed == 0 {
		e.seed = 1
	}
	return e
}

// buildWorkload materializes the experiment's workload for one run. owned
// reports that the instance was built here (not supplied by the caller),
// so Run may close it when it holds resources, as trace replays do.
func (e *Experiment) buildWorkload() (w Workload, owned bool, err error) {
	switch {
	case e.workload != nil:
		return e.workload, false, nil
	case e.wfunc != nil:
		w, err = e.wfunc(e.seed)
		return w, true, err
	case e.wname != "":
		p := e.params
		p.Seed = e.seed
		w, err = registry.Workloads.New(e.wname, p)
		return w, true, err
	default:
		return nil, false, fmt.Errorf("hybridtier: experiment needs a workload " +
			"(WithWorkload, WithWorkloadName, WithWorkloadFunc, or WithTraceFile)")
	}
}

// samePath reports whether a and b name the same file: by inode when both
// exist, else by cleaned absolute path.
func samePath(a, b string) bool {
	if ai, err := os.Stat(a); err == nil {
		if bi, err := os.Stat(b); err == nil {
			return os.SameFile(ai, bi)
		}
	}
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	return errA == nil && errB == nil && aa == bb
}

// Run executes the experiment. Cancelling ctx stops the simulation loop
// promptly; the returned error then wraps the context error (and exposes
// the completed op count via *sim.CanceledError).
func (e *Experiment) Run(ctx context.Context) (*Result, error) {
	w, owned, err := e.buildWorkload()
	if err != nil {
		return nil, err
	}
	if owned {
		if c, ok := w.(io.Closer); ok {
			defer c.Close()
		}
	}
	ops := e.ops
	if r, ok := w.(tracefile.Replay); ok && !e.opsSet {
		// Replay exactly what was recorded unless the caller chose a
		// length: the 1M-op default would silently wrap a shorter capture
		// and break the byte-identical reproduction the replay promises.
		info, ierr := tracefile.Stat(r.Path())
		if ierr != nil {
			return nil, ierr
		}
		if info.Ops == 0 {
			return nil, fmt.Errorf("hybridtier: trace %s has no op records", r.Path())
		}
		ops = info.Ops
	}
	// The policy name may carry a "@tracker" qualifier, and the policy's
	// registry entry may declare a default tracker; resolve both against
	// any WithTracker choice before constructing either side.
	bare, trackerKind, err := resolveTracker(string(e.policy), e.tracker, "experiment")
	if err != nil {
		return nil, err
	}
	polPages, polFast := tierCapacity(w.NumPages(), e.ratio, e.huge)
	p, alloc, err := NewPolicy(PolicyName(bare), polPages, polFast, e.huge)
	if err != nil {
		return nil, err
	}
	var tw *tracefile.Writer
	if e.recordTo != "" {
		// Creating the output truncates it, so recording over the very
		// trace being replayed would destroy the input mid-read.
		if r, ok := w.(tracefile.Replay); ok && samePath(r.Path(), e.recordTo) {
			return nil, fmt.Errorf("hybridtier: WithRecordTo(%q) would overwrite "+
				"the trace being replayed", e.recordTo)
		}
		// The recorder tees the raw 4 KB-granularity op stream; the
		// simulator's huge-page coalescing happens downstream of it, so a
		// capture replays under either granularity.
		tw, err = tracefile.Create(e.recordTo, tracefile.MetaOf(w, e.seed))
		if err != nil {
			return nil, err
		}
		w = tracefile.NewRecorder(w, tw)
	}
	cfg := sim.DefaultConfig(w, p, polFast)
	cfg.Ops = ops
	cfg.Alloc = alloc
	cfg.Seed = e.seed
	cfg.Tracker.Kind = trackerKind
	cfg.AppCacheModel = e.cache
	if e.huge {
		cfg.PageBytes = mem.HugePageBytes
	}
	if e.windowNs > 0 {
		cfg.WindowNs = e.windowNs
	}
	cfg.Ctx = ctx
	cfg.Progress = e.progress
	cfg.BatchOps = e.batchOps
	cfg.Pipeline = e.pipeline
	cfg.Scratch = e.scratch
	res, err := sim.Run(cfg)
	if err == nil {
		// Streaming sources (trace replay, recording tees) cannot report
		// failures through NextOp; surface their latched error here so a
		// short or corrupt trace cannot masquerade as a clean result.
		// Checked before the writer closes: the stream error is the root
		// cause of any knock-on write failure the writer latched.
		if es, ok := w.(interface{ Err() error }); ok && es.Err() != nil {
			res, err = nil, fmt.Errorf("hybridtier: workload stream: %w", es.Err())
		}
	}
	if tw != nil {
		if err != nil {
			// The run failed or was canceled mid-capture. Closing without
			// the end record leaves the partial trace detectably
			// truncated — a clean-looking shorter capture could later
			// replay as if it were the whole run.
			tw.Abort()
		} else if cerr := tw.Close(); cerr != nil {
			// Closing writes the trace's end record; without it the
			// capture reads back as truncated, so a close failure fails
			// the run.
			res, err = nil, cerr
		}
	}
	return res, err
}
