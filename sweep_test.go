package hybridtier

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testSweep(workers int) *Sweep {
	return &Sweep{
		Policies: []PolicyName{PolicyHybridTier, PolicyLRU},
		Ratios:   []int{16, 4},
		Seeds:    []uint64{1, 2},
		Workers:  workers,
		Base: []Option{
			WithWorkloadName("zipf"),
			WithWorkloadParams(WorkloadParams{Pages: 2048}),
			WithOps(20_000),
		},
	}
}

func TestSweepCellsOrder(t *testing.T) {
	cells := testSweep(1).Cells()
	if len(cells) != 2*2*2 {
		t.Fatalf("cross product size = %d, want 8", len(cells))
	}
	// Policy-major enumeration with Index matching position.
	want := Cell{Index: 0, Policy: PolicyHybridTier, Ratio: 16, Seed: 1}
	if cells[0] != want {
		t.Errorf("cells[0] = %+v, want %+v", cells[0], want)
	}
	want = Cell{Index: 7, Policy: PolicyLRU, Ratio: 4, Seed: 2}
	if cells[7] != want {
		t.Errorf("cells[7] = %+v, want %+v", cells[7], want)
	}
}

// TestSweepDeterministicAcrossWorkers is the core contract: the same sweep
// produces byte-identical JSON no matter how many workers execute it.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	var blobs [][]byte
	for _, workers := range []int{1, 4, 4} {
		cells, err := testSweep(workers).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			if c.Err != "" {
				t.Fatalf("cell %+v failed: %s", c.Cell, c.Err)
			}
		}
		b, err := json.Marshal(cells)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	if string(blobs[0]) != string(blobs[1]) {
		t.Error("1-worker and 4-worker sweeps produced different JSON")
	}
	if string(blobs[1]) != string(blobs[2]) {
		t.Error("two identical 4-worker sweeps produced different JSON")
	}
}

// TestSweepRunsCellsConcurrently proves the worker pool overlaps cells: two
// workload factories rendezvous at a barrier, which deadlocks (and times
// out into a cell error) if the two cells were executed sequentially.
func TestSweepRunsCellsConcurrently(t *testing.T) {
	var arrivals atomic.Int32
	ready := make(chan struct{})
	sw := &Sweep{
		Policies: []PolicyName{PolicyHybridTier, PolicyLRU},
		Seeds:    []uint64{1},
		Workers:  2,
		Base: []Option{
			WithOps(10_000),
			WithWorkloadFunc(func(seed uint64) (Workload, error) {
				if arrivals.Add(1) == 2 {
					close(ready)
				}
				select {
				case <-ready:
				case <-time.After(10 * time.Second):
					return nil, errors.New("cells did not run concurrently")
				}
				return Zipf("conc", 2048, 1.0, seed), nil
			}),
		},
	}
	cells, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Err != "" {
			t.Fatalf("cell %s: %s", c.Policy, c.Err)
		}
	}
}

func TestSweepProgress(t *testing.T) {
	var calls []int
	sw := testSweep(4)
	sw.Progress = func(done, total int) {
		if total != 8 {
			t.Errorf("total = %d, want 8", total)
		}
		calls = append(calls, done)
	}
	if _, err := sw.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 8 {
		t.Fatalf("progress called %d times, want 8", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress counts not monotonic: %v", calls)
		}
	}
}

// TestSweepProgressStrictlyIncreasing is the regression test for the
// done-counter race: the completion count used to be incremented outside
// progMu, so two workers could acquire the lock out of increment order and
// deliver Progress(n+1) before Progress(n). A many-cell sweep with cheap
// cells and more workers than cores maximizes the completion contention
// that used to reorder the callbacks; run under -race this also proves the
// callback path is properly synchronized.
func TestSweepProgressStrictlyIncreasing(t *testing.T) {
	for round := 0; round < 3; round++ {
		seeds := make([]uint64, 12)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
		var calls []int
		sw := &Sweep{
			Policies: []PolicyName{PolicyHybridTier, PolicyLRU},
			Ratios:   []int{8, 4},
			Seeds:    seeds,
			Workers:  16,
			Base: []Option{
				WithWorkloadName("zipf"),
				WithWorkloadParams(WorkloadParams{Pages: 512}),
				WithOps(1_000),
			},
		}
		total := len(sw.Cells())
		sw.Progress = func(done, tot int) {
			if tot != total {
				t.Errorf("total = %d, want %d", tot, total)
			}
			calls = append(calls, done)
		}
		if _, err := sw.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if len(calls) != total {
			t.Fatalf("progress called %d times, want %d", len(calls), total)
		}
		for i := 1; i < len(calls); i++ {
			if calls[i] <= calls[i-1] {
				t.Fatalf("progress went backwards at call %d: %v", i, calls)
			}
		}
		if calls[len(calls)-1] != total {
			t.Fatalf("final progress = %d, want %d", calls[len(calls)-1], total)
		}
	}
}

func TestSweepRejectsSharedWorkloadInstance(t *testing.T) {
	sw := &Sweep{
		Policies: []PolicyName{PolicyHybridTier},
		Base:     []Option{WithWorkload(Zipf("t", 1024, 1.0, 1))},
	}
	_, err := sw.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "WithWorkloadName") {
		t.Errorf("sweep must reject a shared workload instance, got %v", err)
	}
}

func TestSweepRequiresPolicies(t *testing.T) {
	if _, err := (&Sweep{}).Run(context.Background()); err == nil {
		t.Error("empty sweep must fail")
	}
}

func TestSweepPerCellErrorsDoNotAbort(t *testing.T) {
	sw := testSweep(2)
	sw.Policies = []PolicyName{PolicyHybridTier, "no-such-policy"}
	cells, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	good, bad := 0, 0
	for _, c := range cells {
		if c.Err != "" {
			bad++
			if !strings.Contains(c.Err, "no-such-policy") {
				t.Errorf("unexpected cell error: %s", c.Err)
			}
		} else {
			good++
		}
	}
	if good != 4 || bad != 4 {
		t.Errorf("good=%d bad=%d, want 4/4", good, bad)
	}
}

// TestSweepCancellation cancels mid-sweep: Run must return promptly with
// the context error and whatever cells completed.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw := testSweep(1)
	sw.Base = append(sw.Base, WithOps(500_000))
	fired := false
	sw.Progress = func(done, total int) {
		if !fired {
			fired = true
			cancel()
		}
	}
	cells, err := sw.Run(ctx)
	if err == nil {
		t.Fatal("canceled sweep must return an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error must wrap context.Canceled: %v", err)
	}
	completed := 0
	for _, c := range cells {
		if c.Result != nil {
			completed++
		}
		// Every entry, run or not, must keep its coordinates and satisfy
		// the exactly-one-of-Result-and-Err contract.
		if c.Policy == "" || c.Seed == 0 {
			t.Errorf("cell %d lost its coordinates: %+v", c.Index, c.Cell)
		}
		if (c.Result == nil) == (c.Err == "") {
			t.Errorf("cell %d violates the Result/Err contract: %+v", c.Index, c)
		}
	}
	if completed == 0 || completed == len(cells) {
		t.Errorf("cancellation should leave a partial sweep, got %d/%d completed", completed, len(cells))
	}
}

func TestSweepRejectsZeroCoordinates(t *testing.T) {
	sw := testSweep(1)
	sw.Seeds = []uint64{0}
	if _, err := sw.Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "seed") {
		t.Errorf("seed 0 must be rejected (it would run as seed 1 mislabeled), got %v", err)
	}
	sw = testSweep(1)
	sw.Ratios = []int{0}
	if _, err := sw.Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "ratio") {
		t.Errorf("ratio 0 must be rejected (it would run as 1:8 mislabeled), got %v", err)
	}
}
