package hybridtier

import (
	"fmt"

	"repro/internal/registry"
	"repro/internal/trace"

	// Self-registration: importing the facade guarantees every built-in
	// policy and workload is in the registries.
	_ "repro/internal/baselines"
	_ "repro/internal/core"
	_ "repro/internal/workloads/cachelib"
	_ "repro/internal/workloads/gap"
	_ "repro/internal/workloads/silo"
	_ "repro/internal/workloads/speccpu"
	_ "repro/internal/workloads/xgboost"
)

// PolicyRegistry maps policy names to constructors
// (registry.PolicyRegistry re-exported).
type PolicyRegistry = registry.PolicyRegistry

// WorkloadRegistry maps workload names to constructors
// (registry.WorkloadRegistry re-exported).
type WorkloadRegistry = registry.WorkloadRegistry

// PolicyEntry is one registered tiering system.
type PolicyEntry = registry.PolicyEntry

// WorkloadEntry is one registered workload generator.
type WorkloadEntry = registry.WorkloadEntry

// WorkloadParams sizes a registry-constructed workload instance.
type WorkloadParams = registry.WorkloadParams

// DefaultPolicies returns the process-wide policy registry. The built-in
// systems self-register into it; callers may Register additional entries
// and resolve them through WithPolicy and Sweep like any built-in.
func DefaultPolicies() *PolicyRegistry { return registry.Policies }

// DefaultWorkloads returns the process-wide workload registry. The paper's
// twelve workloads plus the synthetic "zipf" and "shifting-zipf" sources
// self-register into it.
func DefaultWorkloads() *WorkloadRegistry { return registry.Workloads }

// ValidateWorkload reports whether name would resolve through the
// workload registry: a registered generator, a trace:<path> replay, a
// corpus:<hash> replay (shape-checked only; the store is consulted at
// build time), or a composition spec (docs/COMPOSITION.md) whose
// referenced generators all exist. It parses and checks without constructing anything, so CLIs can
// reject a bad -workload before any simulation starts.
func ValidateWorkload(name string) error { return registry.Workloads.Validate(name) }

// WorkloadSpecSyntax returns one help line per composition scheme of the
// workload grammar ("mix:", "phases:", ...), for CLI listings.
func WorkloadSpecSyntax() []string { return registry.SpecSyntax() }

// init self-registers the synthetic sources, which live in the facade
// because internal/trace must stay importable by the registry package.
func init() {
	registry.Workloads.MustRegister(registry.WorkloadEntry{
		Name: "zipf", Doc: "synthetic single-page-per-op Zipf popularity",
		New: func(p registry.WorkloadParams) (trace.Source, error) {
			n, s := p.Pages, p.Skew
			if n <= 0 {
				n = 1 << 16
			}
			if s <= 0 {
				s = 1.0
			}
			return trace.NewZipfSource(fmt.Sprintf("zipf-%d-%.2f", n, s), n, s, 0, p.Seed), nil
		},
	})
	registry.Workloads.MustRegister(registry.WorkloadEntry{
		Name: "shifting-zipf", Doc: "Zipf with a 2/3 hot-set rotation at 1/3 of 1M ops",
		New: func(p registry.WorkloadParams) (trace.Source, error) {
			n, s := p.Pages, p.Skew
			if n <= 0 {
				n = 1 << 16
			}
			if s <= 0 {
				s = 1.0
			}
			return trace.NewShiftingZipfSource(fmt.Sprintf("shifting-zipf-%d-%.2f", n, s),
				n, s, 0, p.Seed, 333_333, 2.0/3.0), nil
		},
	})
}
